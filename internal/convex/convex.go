// Package convex implements a log-barrier interior-point method for smooth
// convex programs with linear inequality constraints:
//
//	minimize    f(x)
//	subject to  A·x ≤ b,
//
// where f supplies its gradient and Hessian. This is the "efficient
// numerical scheme" the paper appeals to for the continuous energy model on
// arbitrary execution graphs: MinEnergy(G, D) is a geometric program that,
// in the (completion-time, duration) variables, becomes exactly the shape
// above with f(d) = Σ wᵢ³/dᵢ².
//
// Two code paths share the same path-following scheme. SparseMinimize
// (sparse.go) is the production kernel: constraints arrive in CSR form,
// the Newton system is assembled and factored in sparse form with a
// cached symbolic LDLᵀ, and the inner loop allocates nothing. Minimize
// below is the dense reference oracle the property suite checks the
// sparse path against.
package convex

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Objective is a twice-differentiable convex function.
type Objective interface {
	// Value returns f(x).
	Value(x linalg.Vector) float64
	// Gradient writes ∇f(x) into g.
	Gradient(x, g linalg.Vector)
	// Hessian adds ∇²f(x) into h (h is pre-zeroed by the solver).
	Hessian(x linalg.Vector, h *linalg.Matrix)
}

// Ordering re-exports the fill-reducing ordering choice of the sparse
// kernel so callers above convex need not import linalg.
type Ordering = linalg.Ordering

// Re-exported ordering constants (see internal/linalg/order.go).
const (
	OrderAuto = linalg.OrderAuto
	OrderRCM  = linalg.OrderRCM
	OrderND   = linalg.OrderND
)

// Options tunes the barrier method.
type Options struct {
	// Tol is the duality-gap tolerance m/t at which the outer loop stops.
	// Zero means 1e-9.
	Tol float64
	// MaxNewton bounds Newton iterations per centering step. Zero means 60.
	MaxNewton int
	// MaxOuter bounds barrier (centering) stages. Zero means 80.
	MaxOuter int
	// Mu is the barrier growth factor. Zero means 12.
	Mu float64
	// T0 is the initial barrier weight. Zero means 1.
	T0 float64
	// AutoT0 estimates the initial barrier weight from the least-squares
	// centrality of x0 — the t for which x0 best matches a central point,
	// t* = −⟨∇f,∇φ⟩/⟨∇f,∇f⟩ — instead of starting at 1. Warm starts
	// near the optimum then skip most outer stages; at a generic cold
	// start the estimate is small and clamps back to 1, leaving the path
	// unchanged. An explicit nonzero T0 wins over the estimate.
	AutoT0 bool
	// Workers caps the parallelism of the sparse kernel (factorization,
	// constraint assembly, mat-vec and barrier loops). 0 selects
	// automatically: GOMAXPROCS capped at 8, and only for systems with at
	// least sparseParallelMinVars variables — smaller systems stay on the
	// exact sequential path. 1 or negative forces sequential. The dense
	// path ignores it.
	Workers int
	// Ordering forces the sparse kernel's fill-reducing ordering;
	// OrderAuto (zero) picks the cheaper of RCM and nested dissection by
	// symbolic factor size. The dense path ignores it.
	Ordering Ordering
}

// Result reports the outcome of Minimize.
type Result struct {
	X           linalg.Vector
	Value       float64
	Newton      int // total Newton iterations
	OuterStages int
	GapBound    float64 // final m/t upper bound on suboptimality of the barrier path
}

// Errors returned by Minimize.
var (
	ErrInfeasibleStart = errors.New("convex: starting point is not strictly feasible")
	ErrDimension       = errors.New("convex: dimension mismatch")
	ErrNumerical       = errors.New("convex: numerical failure in Newton step")
)

// Minimize runs a standard path-following barrier method from the strictly
// feasible point x0. a may be nil (unconstrained Newton).
func Minimize(f Objective, a *linalg.Matrix, b linalg.Vector, x0 linalg.Vector, opts Options) (*Result, error) {
	n := len(x0)
	var m int
	if a != nil {
		if a.Cols != n || len(b) != a.Rows {
			return nil, ErrDimension
		}
		m = a.Rows
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-9
	}
	maxNewton := opts.MaxNewton
	if maxNewton == 0 {
		maxNewton = 60
	}
	maxOuter := opts.MaxOuter
	if maxOuter == 0 {
		maxOuter = 80
	}
	mu := opts.Mu
	if mu == 0 {
		mu = 12
	}
	t := opts.T0
	if t == 0 {
		t = 1
	}

	x := x0.Clone()
	slack := linalg.NewVector(m)
	if m > 0 {
		computeSlack(a, b, x, slack)
		if slack.Min() <= 0 {
			return nil, fmt.Errorf("%w (min slack %g)", ErrInfeasibleStart, slack.Min())
		}
	}

	res := &Result{}
	grad := linalg.NewVector(n)
	hess := linalg.NewMatrix(n, n)
	dir := linalg.NewVector(n)
	ws := &denseWorkspace{
		neg:   linalg.NewVector(n),
		trial: linalg.NewVector(n),
		adir:  linalg.NewVector(m),
		ts:    linalg.NewVector(m),
	}

	if opts.AutoT0 && opts.T0 == 0 && m > 0 {
		// grad ← ∇f(x0), dir ← ∇φ(x0) = Σ aᵢ/sᵢ (both still scratch here).
		f.Gradient(x, grad)
		for i := 0; i < m; i++ {
			row := a.Row(i)
			inv := 1 / slack[i]
			for j := 0; j < n; j++ {
				dir[j] += row[j] * inv
			}
		}
		num, den := 0.0, 0.0
		for j := 0; j < n; j++ {
			num -= grad[j] * dir[j]
			den += grad[j] * grad[j]
		}
		t = clampT0(num/den, m, tol)
		for j := range dir {
			dir[j] = 0
		}
	}

	for outer := 0; outer < maxOuter; outer++ {
		res.OuterStages++
		// Centering: Newton on  t·f(x) + φ(x),  φ = -Σ log(bᵢ - aᵢᵀx).
		for it := 0; it < maxNewton; it++ {
			res.Newton++
			val, gnorm, err := newtonStep(f, a, b, x, t, grad, hess, dir, slack, ws)
			if err != nil {
				return nil, err
			}
			_ = val
			// Newton decrement-based stop.
			lambda2 := -grad.Dot(dir) // dir solves H·dir = -g, so -gᵀdir = gᵀH⁻¹g ≥ 0
			if lambda2 < 0 {
				lambda2 = 0
			}
			if lambda2/2 < 1e-12 || gnorm < 1e-13 {
				break
			}
			if !lineSearchAndStep(f, a, b, x, dir, t, grad, slack, ws) {
				break // no progress possible at this scale
			}
		}
		gap := float64(m) / t
		res.GapBound = gap
		if m == 0 || gap < tol {
			break
		}
		t *= mu
	}
	res.X = x
	res.Value = f.Value(x)
	return res, nil
}

// clampT0 bounds the AutoT0 centrality estimate: non-finite or sub-unit
// estimates fall back to the classical start t=1, and the upper clamp
// keeps at least a few outer stages so the final gap certificate m/t is
// still driven below tol by centering rather than assumed.
func clampT0(t float64, m int, tol float64) float64 {
	if !(t > 1) { // catches NaN, ±Inf from a zero gradient, and t ≤ 1
		return 1
	}
	if hi := 0.1 * float64(m) / tol; t > hi {
		return hi
	}
	return t
}

func computeSlack(a *linalg.Matrix, b, x, slack linalg.Vector) {
	a.MulVec(x, slack)
	for i := range slack {
		slack[i] = b[i] - slack[i]
	}
}

// denseWorkspace holds the vectors the dense Newton loop reuses across
// iterations and line-search backtracks, so neither allocates per trial.
type denseWorkspace struct {
	neg   linalg.Vector // negated gradient (Newton right-hand side)
	trial linalg.Vector // candidate point of the line search
	adir  linalg.Vector // A·dir
	ts    linalg.Vector // trial slack inside barrierVal
}

// newtonStep assembles gradient/Hessian of t·f + φ at x and solves for the
// Newton direction into dir. Returns the barrier-augmented value and the
// gradient norm.
func newtonStep(f Objective, a *linalg.Matrix, b linalg.Vector, x linalg.Vector,
	t float64, grad linalg.Vector, hess *linalg.Matrix, dir linalg.Vector, slack linalg.Vector,
	ws *denseWorkspace) (float64, float64, error) {

	n := len(x)
	// Gradient: t·∇f + Σ aᵢ/sᵢ.
	f.Gradient(x, grad)
	grad.Scale(t)
	hess.Zero()
	f.Hessian(x, hess)
	for i := range hess.Data {
		hess.Data[i] *= t
	}
	if a != nil {
		computeSlack(a, b, x, slack)
		for i := 0; i < a.Rows; i++ {
			si := slack[i]
			if si <= 0 {
				return 0, 0, fmt.Errorf("%w: slack %d non-positive during centering", ErrNumerical, i)
			}
			row := a.Row(i)
			inv := 1 / si
			for j := 0; j < n; j++ {
				grad[j] += row[j] * inv
			}
			hess.AddOuterScaled(inv*inv, row)
		}
	}
	for j := range grad {
		ws.neg[j] = -grad[j]
	}
	fac, _, err := linalg.FactorPD(hess)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrNumerical, err)
	}
	fac.SolveInto(ws.neg, dir)
	val := t * f.Value(x)
	if a != nil {
		for i := range slack {
			val -= math.Log(slack[i])
		}
	}
	return val, grad.Norm2(), nil
}

// lineSearchAndStep performs a backtracking line search on t·f + φ along dir,
// first shrinking the step to stay strictly inside the constraints, then
// enforcing an Armijo decrease. x is updated in place; every trial reuses
// the workspace vectors, so backtracking allocates nothing. Returns false
// when no step could be taken.
func lineSearchAndStep(f Objective, a *linalg.Matrix, b linalg.Vector, x, dir linalg.Vector,
	t float64, grad, slack linalg.Vector, ws *denseWorkspace) bool {

	const (
		alpha = 0.25
		beta  = 0.5
	)
	step := 1.0
	// Shrink to remain strictly feasible: need slack - step·(A·dir) > 0.
	if a != nil {
		a.MulVec(dir, ws.adir)
		computeSlack(a, b, x, slack)
		for i := range ws.adir {
			if ws.adir[i] > 0 {
				limit := slack[i] / ws.adir[i]
				if 0.99*limit < step {
					step = 0.99 * limit
				}
			}
		}
	}
	if step <= 0 || math.IsNaN(step) {
		return false
	}
	v0 := denseBarrierVal(f, a, b, x, t, ws.ts)
	slope := grad.Dot(dir) // should be negative
	for k := 0; k < 60; k++ {
		copy(ws.trial, x)
		ws.trial.AddScaled(step, dir)
		v := denseBarrierVal(f, a, b, ws.trial, t, ws.ts)
		if v <= v0+alpha*step*slope && !math.IsNaN(v) {
			copy(x, ws.trial)
			return true
		}
		step *= beta
	}
	return false
}

// denseBarrierVal evaluates t·f + φ at y using the given slack workspace.
func denseBarrierVal(f Objective, a *linalg.Matrix, b linalg.Vector, y linalg.Vector,
	t float64, s linalg.Vector) float64 {
	v := t * f.Value(y)
	if a != nil {
		computeSlack(a, b, y, s)
		for i := range s {
			if s[i] <= 0 {
				return math.Inf(1)
			}
			v -= math.Log(s[i])
		}
	}
	return v
}
