package convex

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// quadratic is f(x) = 0.5 xᵀQx - pᵀx with Q diagonal.
type quadratic struct {
	q, p linalg.Vector
}

func (f *quadratic) Value(x linalg.Vector) float64 {
	v := 0.0
	for i := range x {
		v += 0.5*f.q[i]*x[i]*x[i] - f.p[i]*x[i]
	}
	return v
}

func (f *quadratic) Gradient(x, g linalg.Vector) {
	for i := range x {
		g[i] = f.q[i]*x[i] - f.p[i]
	}
}

func (f *quadratic) Hessian(x linalg.Vector, h *linalg.Matrix) {
	for i := range x {
		h.Add(i, i, f.q[i])
	}
}

// powerSum is f(d) = Σ wᵢ³/dᵢ², the continuous-model energy in durations.
type powerSum struct {
	w linalg.Vector
}

func (f *powerSum) Value(x linalg.Vector) float64 {
	v := 0.0
	for i := range x {
		v += math.Pow(f.w[i], 3) / (x[i] * x[i])
	}
	return v
}

func (f *powerSum) Gradient(x, g linalg.Vector) {
	for i := range x {
		g[i] = -2 * math.Pow(f.w[i], 3) / math.Pow(x[i], 3)
	}
}

func (f *powerSum) Hessian(x linalg.Vector, h *linalg.Matrix) {
	for i := range x {
		h.Add(i, i, 6*math.Pow(f.w[i], 3)/math.Pow(x[i], 4))
	}
}

func TestUnconstrainedQuadratic(t *testing.T) {
	// min 0.5(x² + 2y²) - (x + 2y): optimum x=1, y=1.
	f := &quadratic{q: linalg.Vector{1, 2}, p: linalg.Vector{1, 2}}
	res, err := Minimize(f, nil, nil, linalg.Vector{5, -3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-1) > 1e-6 {
		t.Fatalf("x = %v, want [1 1]", res.X)
	}
}

func TestActiveBoxConstraint(t *testing.T) {
	// min 0.5 x² - 4x s.t. x <= 2: unconstrained optimum 4, so x*=2.
	f := &quadratic{q: linalg.Vector{1}, p: linalg.Vector{4}}
	a := linalg.NewMatrix(1, 1)
	a.Set(0, 0, 1)
	res, err := Minimize(f, a, linalg.Vector{2}, linalg.Vector{0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 {
		t.Fatalf("x = %v, want 2", res.X[0])
	}
}

func TestInactiveConstraint(t *testing.T) {
	// min 0.5 x² - x s.t. x <= 100: optimum 1, interior.
	f := &quadratic{q: linalg.Vector{1}, p: linalg.Vector{1}}
	a := linalg.NewMatrix(1, 1)
	a.Set(0, 0, 1)
	res, err := Minimize(f, a, linalg.Vector{100}, linalg.Vector{3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 {
		t.Fatalf("x = %v, want 1", res.X[0])
	}
}

func TestInfeasibleStartRejected(t *testing.T) {
	f := &quadratic{q: linalg.Vector{1}, p: linalg.Vector{0}}
	a := linalg.NewMatrix(1, 1)
	a.Set(0, 0, 1)
	if _, err := Minimize(f, a, linalg.Vector{1}, linalg.Vector{2}, Options{}); err == nil {
		t.Fatal("expected infeasible-start error")
	}
}

func TestDimensionMismatch(t *testing.T) {
	f := &quadratic{q: linalg.Vector{1}, p: linalg.Vector{0}}
	a := linalg.NewMatrix(1, 2)
	if _, err := Minimize(f, a, linalg.Vector{1}, linalg.Vector{0.5}, Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

// Chain energy: two tasks sharing a deadline. min w₁³/d₁² + w₂³/d₂²
// s.t. d₁ + d₂ <= D. The optimum runs both at the same speed
// s = (w₁+w₂)/D, i.e. dᵢ = wᵢ·D/(w₁+w₂), energy (w₁+w₂)³/D².
func TestChainEnergyClosedForm(t *testing.T) {
	w1, w2, D := 3.0, 5.0, 4.0
	f := &powerSum{w: linalg.Vector{w1, w2}}
	// Constraints: d1 + d2 <= D, -d1 <= -lo, -d2 <= -lo (keep away from 0).
	lo := 1e-4
	a := linalg.NewMatrix(3, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, -1)
	a.Set(2, 1, -1)
	b := linalg.Vector{D, -lo, -lo}
	x0 := linalg.Vector{D / 4, D / 4}
	res, err := Minimize(f, a, b, x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantE := math.Pow(w1+w2, 3) / (D * D)
	if math.Abs(res.Value-wantE) > 1e-5*wantE {
		t.Fatalf("energy = %v, want %v", res.Value, wantE)
	}
	wantD1 := w1 * D / (w1 + w2)
	if math.Abs(res.X[0]-wantD1) > 1e-4 {
		t.Fatalf("d1 = %v, want %v", res.X[0], wantD1)
	}
}

// Fork energy check against Theorem 1 with smax = ∞: source T0 then n
// children in parallel, each child constrained by d0 + di <= D.
func TestForkEnergyMatchesTheorem1(t *testing.T) {
	w := linalg.Vector{2, 1, 3, 4} // w[0] = source
	D := 5.0
	n := len(w) - 1
	f := &powerSum{w: w}
	rows := n + len(w)
	a := linalg.NewMatrix(rows, len(w))
	b := linalg.NewVector(rows)
	for i := 0; i < n; i++ {
		a.Set(i, 0, 1)
		a.Set(i, i+1, 1)
		b[i] = D
	}
	lo := 1e-4
	for j := 0; j < len(w); j++ {
		a.Set(n+j, j, -1)
		b[n+j] = -lo
	}
	x0 := linalg.NewVector(len(w))
	for j := range x0 {
		x0[j] = D / 3
	}
	res, err := Minimize(f, a, b, x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sumCubes := 0.0
	for i := 1; i < len(w); i++ {
		sumCubes += math.Pow(w[i], 3)
	}
	s0 := (math.Cbrt(sumCubes) + w[0]) / D
	wantE := w[0]*s0*s0 + sumCubes/math.Pow(D-w[0]/s0, 2)
	if math.Abs(res.Value-wantE) > 1e-4*wantE {
		t.Fatalf("fork energy = %v, want %v (Theorem 1)", res.Value, wantE)
	}
}

func TestResultDiagnostics(t *testing.T) {
	f := &quadratic{q: linalg.Vector{1}, p: linalg.Vector{1}}
	a := linalg.NewMatrix(1, 1)
	a.Set(0, 0, 1)
	res, err := Minimize(f, a, linalg.Vector{10}, linalg.Vector{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Newton == 0 || res.OuterStages == 0 {
		t.Fatalf("expected nonzero iteration counters: %+v", res)
	}
	if res.GapBound > 1e-6 {
		t.Fatalf("gap bound too large: %v", res.GapBound)
	}
}
