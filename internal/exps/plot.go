package exps

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ASCII line plots for the figure experiments, so cmd/experiments can show
// the *shape* of each curve in a terminal without any plotting dependency.

// Plot renders the table's numeric columns as an ASCII chart: column xCol
// supplies the x-axis, each yCol becomes one series drawn with its own
// glyph. Non-numeric cells are skipped. logY plots log10(y) (useful for the
// β² growth curves).
func (t *Table) Plot(xCol int, yCols []int, width, height int, logY bool) string {
	if width < 24 {
		width = 24
	}
	if height < 8 {
		height = 8
	}
	type series struct {
		name   string
		glyph  byte
		xs, ys []float64
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}
	var all []series
	for k, col := range yCols {
		s := series{name: t.Columns[col], glyph: glyphs[k%len(glyphs)]}
		for _, row := range t.Rows {
			x, errX := strconv.ParseFloat(row[xCol], 64)
			y, errY := strconv.ParseFloat(row[col], 64)
			if errX != nil || errY != nil || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			if logY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			s.xs = append(s.xs, x)
			s.ys = append(s.ys, y)
		}
		if len(s.xs) > 0 {
			all = append(all, s)
		}
	}
	if len(all) == 0 {
		return "(no numeric data to plot)\n"
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range all {
		for i := range s.xs {
			xmin = math.Min(xmin, s.xs[i])
			xmax = math.Max(xmax, s.xs[i])
			ymin = math.Min(ymin, s.ys[i])
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range all {
		for i := range s.xs {
			cx := int(math.Round((s.xs[i] - xmin) / (xmax - xmin) * float64(width-1)))
			cy := int(math.Round((s.ys[i] - ymin) / (ymax - ymin) * float64(height-1)))
			row := height - 1 - cy
			if grid[row][cx] == ' ' || grid[row][cx] == s.glyph {
				grid[row][cx] = s.glyph
			} else {
				grid[row][cx] = '&' // collision marker
			}
		}
	}
	var b strings.Builder
	yLabel := func(v float64) string {
		if logY {
			return fmt.Sprintf("%8.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%8.3g", v)
	}
	for r, line := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%s |%s\n", yLabel(ymax), line)
		case height - 1:
			fmt.Fprintf(&b, "%s |%s\n", yLabel(ymin), line)
		default:
			fmt.Fprintf(&b, "%8s |%s\n", "", line)
		}
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-10.3g%*.3g\n", "", xmin, width-10, xmax)
	var legend []string
	for _, s := range all {
		legend = append(legend, fmt.Sprintf("%c %s", s.glyph, s.name))
	}
	fmt.Fprintf(&b, "%8s  %s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// DefaultPlot picks the conventional axes for a figure table: column 0 as x
// and every ratio-like column as y (those whose header contains '/'), or all
// remaining numeric columns when none match.
func (t *Table) DefaultPlot(width, height int, logY bool) string {
	var ys []int
	for i, c := range t.Columns {
		if i == 0 {
			continue
		}
		if strings.Contains(c, "/") || strings.Contains(c, "ratio") || strings.Contains(c, "bound") {
			ys = append(ys, i)
		}
	}
	if len(ys) == 0 {
		for i := 1; i < len(t.Columns); i++ {
			ys = append(ys, i)
		}
	}
	return t.Plot(0, ys, width, height, logY)
}
