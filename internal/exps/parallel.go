package exps

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// RunAllParallel executes the suite with `workers` experiments in flight at
// once (each experiment is itself single-threaded and owns its RNG, so
// results are identical to the sequential run). Markdown is emitted in
// report order regardless of completion order.
func RunAllParallel(w io.Writer, outDir string, cfg Config, workers int) error {
	if workers < 1 {
		workers = 1
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	suite := All()
	type outcome struct {
		table *Table
		err   error
	}
	results := make([]outcome, len(suite))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, exp := range suite {
		wg.Add(1)
		go func(i int, exp Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t, err := exp.Run(cfg)
			results[i] = outcome{table: t, err: err}
		}(i, exp)
	}
	wg.Wait()
	for i, exp := range suite {
		if results[i].err != nil {
			return fmt.Errorf("exps: %s failed: %w", exp.ID, results[i].err)
		}
		if _, err := fmt.Fprintln(w, results[i].table.Markdown()); err != nil {
			return err
		}
		if outDir != "" {
			path := filepath.Join(outDir, exp.ID+".csv")
			if err := os.WriteFile(path, []byte(results[i].table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
