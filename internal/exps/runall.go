package exps

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Experiment couples an ID with its generator.
type Experiment struct {
	ID  string
	Run func(Config) (*Table, error)
}

// All returns the full suite in report order.
func All() []Experiment {
	return []Experiment{
		{"T1", Table1Fork},
		{"T2", Table2TreeSP},
		{"T3", Table3Vdd},
		{"T4", Table4Hardness},
		{"T5", Table5Approx},
		{"F1", Figure1DeadlineSweep},
		{"F2", Figure2ModeCount},
		{"F3", Figure3DeltaSweep},
		{"F4", Figure4KSweep},
		{"F5", Figure5Scaling},
		{"A1", AblationGranularity},
		{"A2", AblationAlpha},
		{"A3", AblationMapping},
		{"A4", AblationSwitching},
	}
}

// RunAll executes the suite, streaming Markdown to w and, when outDir is
// non-empty, writing one CSV per experiment into it.
func RunAll(w io.Writer, outDir string, cfg Config) error {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, exp := range All() {
		table, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("exps: %s failed: %w", exp.ID, err)
		}
		if _, err := fmt.Fprintln(w, table.Markdown()); err != nil {
			return err
		}
		if outDir != "" {
			path := filepath.Join(outDir, exp.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
