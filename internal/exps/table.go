// Package exps is the experiment harness: it regenerates, for every table
// and figure listed in DESIGN.md, the rows/series a paper evaluation would
// report. The brief announcement itself has no evaluation section, so this
// suite is the comparative study its conclusion announces — every empirical
// claim traces back to one of the five theorems or Proposition 1.
package exps

import (
	"fmt"
	"strings"
)

// Table is a titled grid of rendered cells, exportable as Markdown or CSV.
type Table struct {
	ID      string // experiment identifier, e.g. "T1" or "F3"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes holds expected-shape commentary appended below the table.
	Notes []string
}

// Add appends a row; the cell count must match the column count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("exps: row with %d cells for %d columns in %s", len(cells), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) Addf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case int:
			cells[i] = fmt.Sprintf("%d", x)
		case bool:
			if x {
				cells[i] = "yes"
			} else {
				cells[i] = "no"
			}
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Add(cells...)
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		quoted := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		b.WriteString(strings.Join(quoted, ",") + "\n")
	}
	return b.String()
}
