package exps

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// Table1Fork verifies Theorem 1 end to end: on random forks of growing
// size, the closed-form energy equals the interior-point optimum, in both
// the unsaturated (s₀ ≤ smax) and saturated (s₀ > smax) branches.
func Table1Fork(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "T1",
		Title:   "Theorem 1: fork closed form vs numeric optimum",
		Columns: []string{"n leaves", "deadline factor", "branch", "E closed", "E numeric", "rel diff"},
	}
	sizes := []int{2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{2, 8, 32}
	}
	const smax = 2.0
	for _, n := range sizes {
		for _, factor := range []float64{1.05, 3.0} {
			g := graph.Fork(rng, n, graph.UniformWeights(1, 5))
			dmin, err := g.MinimalDeadline(smax)
			if err != nil {
				return nil, err
			}
			p, err := core.NewProblem(g, dmin*factor)
			if err != nil {
				return nil, err
			}
			closed, err := p.SolveForkContinuous(smax)
			if err != nil {
				return nil, err
			}
			numeric, err := p.SolveContinuousNumeric(smax, core.ContinuousOptions{})
			if err != nil {
				return nil, err
			}
			speeds, _ := closed.Speeds()
			branch := "unsaturated"
			if speeds[0] >= smax*(1-1e-9) {
				branch = "saturated"
			}
			t.Addf(n, factor, branch, closed.Energy, numeric.Energy,
				relDiff(closed.Energy, numeric.Energy))
		}
	}
	t.Notes = append(t.Notes, "Expected: rel diff ≈ 0 (≤1e-3) on every row; the saturated branch appears at the tight deadline factor.")
	return t, nil
}

// Table2TreeSP verifies Theorem 2: the equivalent-weight algebra matches the
// numeric optimum on random trees and series-parallel graphs (smax = ∞).
func Table2TreeSP(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	t := &Table{
		ID:      "T2",
		Title:   "Theorem 2: tree/SP equivalent-weight algebra vs numeric optimum",
		Columns: []string{"shape", "n", "E algebra", "E numeric", "rel diff"},
	}
	sizes := []int{4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		sizes = []int{4, 16}
	}
	for _, n := range sizes {
		tree := graph.RandomOutTree(rng, n, graph.UniformWeights(1, 5))
		if err := addAlgebraRow(t, "out-tree", tree, nil, 2.0); err != nil {
			return nil, err
		}
		spg, expr := graph.RandomSP(rng, n, graph.UniformWeights(1, 5))
		if err := addAlgebraRow(t, "series-parallel", spg, expr, 2.0); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "Expected: rel diff ≈ 0 (≤1e-3) on every row; algebra runs in O(n), numeric in polynomial time.")
	return t, nil
}

func addAlgebraRow(t *Table, shape string, g *graph.Graph, expr *graph.SPExpr, factor float64) error {
	dmin, err := g.MinimalDeadline(1)
	if err != nil {
		return err
	}
	p, err := core.NewProblem(g, dmin*factor)
	if err != nil {
		return err
	}
	var closed *core.Solution
	if expr != nil {
		closed, err = p.SolveSPContinuous(expr, math.Inf(1))
	} else {
		closed, err = p.SolveTreeContinuous(math.Inf(1))
	}
	if err != nil {
		return err
	}
	numeric, err := p.SolveContinuousNumeric(math.Inf(1), core.ContinuousOptions{})
	if err != nil {
		return err
	}
	t.Addf(shape, g.N(), closed.Energy, numeric.Energy, relDiff(closed.Energy, numeric.Energy))
	return nil
}

// Table3Vdd verifies Theorem 3's place in the model hierarchy: on random
// mapped DAGs, E_cont ≤ E_vdd(LP) ≤ E_two-mode ≤ … and E_vdd ≤ E_discrete.
func Table3Vdd(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	t := &Table{
		ID:      "T3",
		Title:   "Theorem 3: Vdd-Hopping LP optimum within the model hierarchy",
		Columns: []string{"instance", "E cont", "E vdd (LP)", "E two-mode", "E disc exact", "hierarchy holds", "LP pivots"},
	}
	trials := cfg.pick(6, 2)
	modes := []float64{0.6, 1.1, 1.7, 2.4}
	for trial := 0; trial < trials; trial++ {
		inst, err := layeredInstance(rng, 4, 3, 3, modes[len(modes)-1], 1.3+rng.Float64())
		if err != nil {
			return nil, err
		}
		p := inst.Problem
		cont, err := p.SolveContinuous(modes[len(modes)-1], core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		vm, _ := model.NewVddHopping(modes)
		vdd, err := p.SolveVddHopping(vm)
		if err != nil {
			return nil, err
		}
		two, err := p.SolveVddTwoMode(vm, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		dm, _ := model.NewDiscrete(modes)
		disc, err := p.SolveDiscreteBB(dm, core.DiscreteOptions{})
		if err != nil {
			return nil, err
		}
		ok := cont.Energy <= vdd.Energy*(1+1e-6) &&
			vdd.Energy <= two.Energy*(1+1e-6) &&
			vdd.Energy <= disc.Energy*(1+1e-6)
		t.Addf(fmt.Sprintf("%s #%d", inst.Name, trial), cont.Energy, vdd.Energy, two.Energy, disc.Energy, ok, vdd.Stats.Pivots)
	}
	t.Notes = append(t.Notes,
		"Expected: every row reports hierarchy holds = yes — mixing modes (Vdd) can only help vs one mode per task (Discrete), and continuous speeds can only help vs mixing.")
	return t, nil
}

// Table4Hardness illustrates Theorem 4 empirically: branch-and-bound node
// counts grow exponentially with n under tight deadlines, while the Vdd LP
// pivot count and the continuous Newton count stay polynomial.
func Table4Hardness(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	t := &Table{
		ID:      "T4",
		Title:   "Theorem 4: exponential exact search vs polynomial LP/convex solves",
		Columns: []string{"n", "BB nodes", "Vdd LP pivots", "continuous Newton iters"},
	}
	sizes := []int{4, 6, 8, 10, 12, 14}
	if cfg.Quick {
		sizes = []int{4, 6, 8}
	}
	modes := []float64{0.5, 0.8, 1.2, 1.6, 2}
	for _, n := range sizes {
		app := graph.GnpDAG(rng, n, 0.25, graph.UniformWeights(1, 5))
		inst, err := buildInstance(fmt.Sprintf("gnp-%d", n), app, 2, 2, 1.15)
		if err != nil {
			return nil, err
		}
		dm, _ := model.NewDiscrete(modes)
		bb, err := inst.Problem.SolveDiscreteBB(dm, core.DiscreteOptions{})
		if err != nil {
			return nil, err
		}
		vm, _ := model.NewVddHopping(modes)
		vdd, err := inst.Problem.SolveVddHopping(vm)
		if err != nil {
			return nil, err
		}
		cont, err := inst.Problem.SolveContinuousNumeric(2, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		t.Addf(n, bb.Stats.Nodes, vdd.Stats.Pivots, cont.Stats.Newton)
	}
	t.Notes = append(t.Notes,
		"Expected: BB nodes grow rapidly (exponential trend) with n; LP pivots and Newton iterations grow slowly (polynomial).")
	return t, nil
}

// Table5Approx verifies Theorem 5 and Proposition 1: measured approximation
// ratios (vs the speed-banded continuous lower bound) never exceed the
// proven factor, over a (δ, K) grid.
func Table5Approx(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	t := &Table{
		ID:      "T5",
		Title:   "Theorem 5: measured approximation ratio vs proven bound",
		Columns: []string{"delta", "K", "measured ratio", "bound (1+δ/smin)²(1+1/K)²", "within bound"},
	}
	deltas := []float64{0.5, 0.25, 0.1}
	ks := []int{1, 4, 16}
	if cfg.Quick {
		deltas = []float64{0.25}
		ks = []int{1, 8}
	}
	const smin, smax = 0.5, 2.0
	inst, err := layeredInstance(rng, 4, 3, 3, smax, 1.8)
	if err != nil {
		return nil, err
	}
	p := inst.Problem
	contBanded, err := p.SolveContinuousNumeric(smax, core.ContinuousOptions{SMin: smin})
	if err != nil {
		return nil, err
	}
	for _, delta := range deltas {
		im, err := model.NewIncremental(smin, smax, delta)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			sol, err := p.SolveIncrementalApprox(im, k, core.ContinuousOptions{})
			if err != nil {
				return nil, err
			}
			ratio := sol.Energy / contBanded.Energy
			bound := core.Theorem5Bound(im, k)
			t.Addf(delta, k, ratio, bound, ratio <= bound*(1+1e-6))
		}
	}
	t.Notes = append(t.Notes,
		"Expected: within bound = yes everywhere; the measured ratio is typically far below the worst case and decreases with both δ and K.")
	return t, nil
}

// timeIt measures the wall-clock time of fn.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1e-300, math.Max(math.Abs(a), math.Abs(b)))
}
