package exps

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/platform"
)

// Config sets the experiment scale and reproducibility seed.
type Config struct {
	// Seed drives every random generator; the suite is deterministic per seed.
	Seed int64
	// Quick shrinks instance sizes and sweep lengths so the full suite runs
	// in well under a second per experiment (for `go test -bench`).
	Quick bool
}

func (c Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Instance is one MinEnergy input: an application graph, its mapping, and
// the resulting execution graph wrapped in a Problem.
type Instance struct {
	Name           string
	App            *graph.Graph
	Mapping        *platform.Mapping
	Exec           *graph.Graph
	Problem        *core.Problem
	DeadlineFactor float64 // D = factor × Dmin(smax)
}

// buildInstance maps app onto procs processors with list scheduling and sets
// D = factor × (critical path at smax).
func buildInstance(name string, app *graph.Graph, procs int, smax, factor float64) (*Instance, error) {
	m, err := platform.ListSchedule(app, procs)
	if err != nil {
		return nil, err
	}
	eg, err := platform.BuildExecutionGraph(app, m)
	if err != nil {
		return nil, err
	}
	dmin, err := eg.MinimalDeadline(smax)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(eg, dmin*factor)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name: name, App: app, Mapping: m, Exec: eg, Problem: p,
		DeadlineFactor: factor,
	}, nil
}

// layeredInstance is the workhorse workload of the suite: a random layered
// DAG (the structure of iterative stencil/pipeline applications) mapped on
// procs processors.
func layeredInstance(rng *rand.Rand, layers, width, procs int, smax, factor float64) (*Instance, error) {
	app := graph.Layered(rng, layers, width, 0.35, graph.UniformWeights(1, 5))
	return buildInstance(fmt.Sprintf("layered-%dx%d-p%d", layers, width, procs), app, procs, smax, factor)
}

// evenModes returns m modes evenly spread over [lo, hi].
func evenModes(m int, lo, hi float64) []float64 {
	if m == 1 {
		return []float64{hi}
	}
	out := make([]float64, m)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(m-1)
	}
	return out
}
