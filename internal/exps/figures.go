package exps

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// Figure1DeadlineSweep is the headline comparison: energy of every model
// relative to the Continuous optimum as the deadline loosens from barely
// feasible (β = 1.05) to very slack (β = 8), on a layered DAG mapped on 4
// processors. The expected shape: all ratios ≥ 1; Vdd hugs 1; Discrete is
// the worst of the optimizing models; Incremental sits between; the
// baselines (uniform, all-max) show what reclaiming buys — all-max blows up
// quadratically with β.
func Figure1DeadlineSweep(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	t := &Table{
		ID:    "F1",
		Title: "Energy relative to Continuous vs deadline factor β (D = β·Dmin)",
		Columns: []string{"beta", "E cont", "vdd/cont", "disc-greedy/cont",
			"disc-roundup/cont", "incr-approx/cont", "uniform/cont", "all-max/cont"},
	}
	betas := []float64{1.05, 1.2, 1.5, 2, 3, 5, 8}
	if cfg.Quick {
		betas = []float64{1.2, 2, 5}
	}
	const smin, smax = 0.4, 2.0
	nModes := 5
	layers, width := cfg.pick(6, 3), cfg.pick(4, 3)
	app := graph.Layered(rng, layers, width, 0.35, graph.UniformWeights(1, 5))
	modes := evenModes(nModes, smin, smax)
	dm, _ := model.NewDiscrete(modes)
	vm, _ := model.NewVddHopping(modes)
	im, _ := model.NewIncremental(smin, smax, (smax-smin)/float64(nModes-1))
	cm, _ := model.NewContinuous(smax)

	for _, beta := range betas {
		inst, err := buildInstance("layered", app, 4, smax, beta)
		if err != nil {
			return nil, err
		}
		p := inst.Problem
		cont, err := p.SolveContinuous(smax, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		vdd, err := p.SolveVddHopping(vm)
		if err != nil {
			return nil, err
		}
		greedy, err := p.SolveDiscreteGreedy(dm)
		if err != nil {
			return nil, err
		}
		roundup, err := p.SolveDiscreteRoundUp(dm, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		incr, err := p.SolveIncrementalApprox(im, 8, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		uni, err := p.SolveUniform(cm)
		if err != nil {
			return nil, err
		}
		allmax, err := p.SolveAllMax(cm)
		if err != nil {
			return nil, err
		}
		t.Addf(beta, cont.Energy,
			vdd.Energy/cont.Energy,
			greedy.Energy/cont.Energy,
			roundup.Energy/cont.Energy,
			incr.Energy/cont.Energy,
			uni.Energy/cont.Energy,
			allmax.Energy/cont.Energy)
	}
	t.Notes = append(t.Notes,
		"Expected shape: every ratio ≥ 1; at tight-to-moderate β the optimizing models track continuous closely (Vdd ≈ 1, Discrete worst, Incremental between) while all-max/cont grows ≈ β².",
		"Crossover: once β is loose enough that continuous speeds sink below the slowest mode s₁, every mode-based model hits its floor Σw·s₁² and its ratio grows ≈ β² too — discrete hardware cannot reclaim slack below its bottom mode.")
	return t, nil
}

// Figure2ModeCount shows how the discrete kinds converge to Continuous as
// the number of modes grows, at a fixed deadline factor.
func Figure2ModeCount(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	t := &Table{
		ID:      "F2",
		Title:   "Energy relative to Continuous vs number of modes m",
		Columns: []string{"m", "vdd/cont", "disc-greedy/cont", "disc-exact/cont"},
	}
	counts := []int{2, 3, 4, 6, 8, 12}
	if cfg.Quick {
		counts = []int{2, 4, 8}
	}
	const smin, smax = 0.4, 2.0
	inst, err := layeredInstance(rng, cfg.pick(4, 3), 3, 3, smax, 2.0)
	if err != nil {
		return nil, err
	}
	p := inst.Problem
	cont, err := p.SolveContinuous(smax, core.ContinuousOptions{})
	if err != nil {
		return nil, err
	}
	for _, m := range counts {
		modes := evenModes(m, smin, smax)
		vm, _ := model.NewVddHopping(modes)
		dm, _ := model.NewDiscrete(modes)
		vdd, err := p.SolveVddHopping(vm)
		if err != nil {
			return nil, err
		}
		greedy, err := p.SolveDiscreteGreedy(dm)
		if err != nil {
			return nil, err
		}
		exact, err := p.SolveDiscreteBB(dm, core.DiscreteOptions{})
		if err != nil {
			return nil, err
		}
		t.Addf(m, vdd.Energy/cont.Energy, greedy.Energy/cont.Energy, exact.Energy/cont.Energy)
	}
	t.Notes = append(t.Notes,
		"Expected shape: all ratios → 1 as m grows; Vdd converges fastest (it interpolates between modes), Discrete needs many modes to catch up — the paper's motivation for Vdd-Hopping.")
	return t, nil
}

// Figure3DeltaSweep verifies Proposition 1 bullet 1 as a curve: the
// incremental optimum (exact BB) tracks the continuous optimum within
// (1+δ/smin)², and converges quadratically as δ shrinks.
func Figure3DeltaSweep(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	t := &Table{
		ID:      "F3",
		Title:   "Incremental-optimum energy ratio vs δ, against the (1+δ/smin)² bound",
		Columns: []string{"delta", "modes", "incr-opt/cont", "bound (1+δ/smin)²"},
	}
	deltas := []float64{0.8, 0.4, 0.2, 0.1, 0.05}
	if cfg.Quick {
		deltas = []float64{0.4, 0.1}
	}
	const smin, smax = 0.5, 2.0
	// A series-parallel execution graph lets the Pareto DP compute the exact
	// incremental optimum even with the dense mode grids small δ implies
	// (branch-and-bound would blow up here — Theorem 4).
	spg, expr := graph.RandomSP(rng, cfg.pick(12, 8), graph.UniformWeights(1, 5))
	dmin, err := spg.MinimalDeadline(smax)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(spg, dmin*1.7)
	if err != nil {
		return nil, err
	}
	cont, err := p.SolveContinuousNumeric(smax, core.ContinuousOptions{SMin: smin})
	if err != nil {
		return nil, err
	}
	for _, delta := range deltas {
		im, err := model.NewIncremental(smin, smax, delta)
		if err != nil {
			return nil, err
		}
		sol, err := p.SolveDiscreteSP(im, expr, core.DiscreteOptions{})
		if err != nil {
			return nil, err
		}
		t.Addf(delta, im.NumModes(), sol.Energy/cont.Energy, core.Proposition1ContinuousBound(im))
	}
	t.Notes = append(t.Notes,
		"Expected shape: the measured ratio stays below the bound curve and both → 1 as δ → 0 (quadratically) — the Incremental model is 'arbitrarily efficient'.")
	return t, nil
}

// Figure4KSweep verifies Theorem 5 as a curve: the approximation algorithm's
// measured ratio vs K, against (1+δ/smin)²(1+1/K)².
func Figure4KSweep(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	t := &Table{
		ID:      "F4",
		Title:   "Theorem 5 algorithm: measured ratio vs K, with bound",
		Columns: []string{"K", "measured ratio", "bound", "rounding-only bound (1+δ/smin)²"},
	}
	ks := []int{1, 2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		ks = []int{1, 8, 64}
	}
	const smin, smax, delta = 0.5, 2.0, 0.25
	im, err := model.NewIncremental(smin, smax, delta)
	if err != nil {
		return nil, err
	}
	inst, err := layeredInstance(rng, cfg.pick(4, 3), 3, 3, smax, 1.8)
	if err != nil {
		return nil, err
	}
	p := inst.Problem
	cont, err := p.SolveContinuousNumeric(smax, core.ContinuousOptions{SMin: smin})
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		sol, err := p.SolveIncrementalApprox(im, k, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		t.Addf(k, sol.Energy/cont.Energy, core.Theorem5Bound(im, k), core.Proposition1ContinuousBound(im))
	}
	t.Notes = append(t.Notes,
		"Expected shape: measured ratio under the bound for every K, decreasing toward the rounding-only asymptote as K → ∞.")
	return t, nil
}

// Figure5Scaling measures solver cost vs instance size and fits empirical
// scaling exponents: the polynomial solvers should fit low-degree power
// laws while BB's node count climbs out of reach.
func Figure5Scaling(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	t := &Table{
		ID:      "F5",
		Title:   "Solver wall-clock time (ms) vs n",
		Columns: []string{"n", "cont numeric (ms)", "SP algebra (ms)", "vdd LP (ms)", "disc greedy (ms)"},
	}
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	const smax = 2.0
	modes := evenModes(4, 0.5, smax)
	for _, n := range sizes {
		app := graph.GnpDAG(rng, n, 0.15, graph.UniformWeights(1, 5))
		inst, err := buildInstance(fmt.Sprintf("gnp-%d", n), app, 4, smax, 2.0)
		if err != nil {
			return nil, err
		}
		p := inst.Problem
		dNum, err := timeIt(func() error {
			_, e := p.SolveContinuousNumeric(smax, core.ContinuousOptions{})
			return e
		})
		if err != nil {
			return nil, err
		}
		// SP algebra on an SP graph of the same size (the algebra needs the
		// SP shape; it shows the O(n) closed form).
		spg, expr := graph.RandomSP(rng, n, graph.UniformWeights(1, 5))
		dminSP, _ := spg.MinimalDeadline(smax)
		pSP, _ := core.NewProblem(spg, dminSP*2)
		dSP, err := timeIt(func() error {
			_, e := pSP.SolveSPContinuous(expr, math.Inf(1))
			return e
		})
		if err != nil {
			return nil, err
		}
		vm, _ := model.NewVddHopping(modes)
		dLP, err := timeIt(func() error {
			_, e := p.SolveVddHopping(vm)
			return e
		})
		if err != nil {
			return nil, err
		}
		dm, _ := model.NewDiscrete(modes)
		dGr, err := timeIt(func() error {
			_, e := p.SolveDiscreteGreedy(dm)
			return e
		})
		if err != nil {
			return nil, err
		}
		ms := func(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1e3 }
		t.Addf(n, ms(dNum), ms(dSP), ms(dLP), ms(dGr))
	}
	t.Notes = append(t.Notes,
		"Expected shape: every column grows polynomially (SP algebra near-linearly); compare with T4's exponential BB node counts.")
	return t, nil
}
