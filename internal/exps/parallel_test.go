package exps

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllParallelMatchesSequential(t *testing.T) {
	cfg := quickCfg()
	var seq, par bytes.Buffer
	if err := RunAll(&seq, "", cfg); err != nil {
		t.Fatal(err)
	}
	if err := RunAllParallel(&par, "", cfg, 4); err != nil {
		t.Fatal(err)
	}
	// Identical configuration ⇒ byte-identical reports, except the F5
	// timing experiment whose cells are wall-clock measurements.
	seqLines := strings.Split(seq.String(), "\n")
	parLines := strings.Split(par.String(), "\n")
	if len(seqLines) != len(parLines) {
		t.Fatalf("line counts differ: %d vs %d", len(seqLines), len(parLines))
	}
	inF5 := false
	for i := range seqLines {
		if strings.HasPrefix(seqLines[i], "### F5") {
			inF5 = true
		} else if strings.HasPrefix(seqLines[i], "### ") {
			inF5 = false
		}
		if inF5 {
			continue
		}
		if seqLines[i] != parLines[i] {
			t.Fatalf("line %d differs:\nseq: %s\npar: %s", i, seqLines[i], parLines[i])
		}
	}
}

func TestRunAllParallelWorkerClamp(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAllParallel(&buf, "", quickCfg(), 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### T1") {
		t.Fatal("no output with clamped workers")
	}
}

func TestRunAllParallelWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := RunAllParallel(&buf, dir, quickCfg(), 8); err != nil {
		t.Fatal(err)
	}
}
