package exps

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/platform"
)

// Ablations: design choices DESIGN.md calls out, quantified. These go
// beyond the paper's text but use only its machinery.

// AblationGranularity (A1) asks what the paper's per-*task* speeds buy over
// the coarser control real chips expose: one speed per processor, or one
// global speed. Continuous model throughout, so every row is an exact
// optimum of its granularity.
func AblationGranularity(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 20))
	t := &Table{
		ID:      "A1",
		Title:   "Speed-control granularity: per-task vs per-processor vs global (continuous optima)",
		Columns: []string{"beta", "E per-task", "per-proc/per-task", "uniform/per-task", "all-max/per-task"},
	}
	betas := []float64{1.1, 1.5, 2, 3}
	if cfg.Quick {
		betas = []float64{1.2, 2}
	}
	const smax = 2.0
	layers, width := cfg.pick(5, 3), cfg.pick(4, 3)
	app := graph.Layered(rng, layers, width, 0.35, graph.UniformWeights(1, 5))
	mapping, err := platform.ListSchedule(app, 4)
	if err != nil {
		return nil, err
	}
	eg, err := platform.BuildExecutionGraph(app, mapping)
	if err != nil {
		return nil, err
	}
	dmin, err := eg.MinimalDeadline(smax)
	if err != nil {
		return nil, err
	}
	cm, _ := model.NewContinuous(smax)
	for _, beta := range betas {
		p, err := core.NewProblem(eg, dmin*beta)
		if err != nil {
			return nil, err
		}
		perTask, err := p.SolveContinuous(smax, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		perProc, err := p.SolvePerProcessorContinuous(mapping, smax, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		uni, err := p.SolveUniform(cm)
		if err != nil {
			return nil, err
		}
		allmax, err := p.SolveAllMax(cm)
		if err != nil {
			return nil, err
		}
		t.Addf(beta, perTask.Energy,
			perProc.Energy/perTask.Energy,
			uni.Energy/perTask.Energy,
			allmax.Energy/perTask.Energy)
	}
	t.Notes = append(t.Notes,
		"Expected shape: 1 ≤ per-proc ≤ uniform ≤ all-max relative to per-task; the per-proc gap quantifies exactly what the paper's task-grained model buys over chip-per-processor DVFS.")
	return t, nil
}

// AblationAlpha (A2) varies the dynamic-power exponent: the paper fixes
// s³; with s^α for α ∈ (1, 3] the equivalent-weight algebra generalizes
// (series add; parallel is the α-norm). The reclaiming gain — baseline
// energy over optimal — grows with α.
func AblationAlpha(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 21))
	t := &Table{
		ID:      "A2",
		Title:   "Power exponent α: closed form vs numeric, and the reclaiming gain",
		Columns: []string{"alpha", "E algebra", "E numeric", "rel diff", "all-max/optimal"},
	}
	alphas := []float64{1.5, 2, 2.5, 3}
	if cfg.Quick {
		alphas = []float64{2, 3}
	}
	const smax = 2.0
	g, expr := graph.RandomSP(rng, cfg.pick(16, 8), graph.UniformWeights(1, 5))
	dmin, err := g.MinimalDeadline(smax)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(g, dmin*2.5)
	if err != nil {
		return nil, err
	}
	for _, alpha := range alphas {
		closed, err := p.SolveSPContinuousAlpha(expr, alpha)
		if err != nil {
			return nil, err
		}
		numeric, err := p.SolveContinuousNumericAlpha(math.Inf(1), alpha, core.ContinuousOptions{})
		if err != nil {
			return nil, err
		}
		allmax := 0.0
		for i := 0; i < g.N(); i++ {
			allmax += core.AlphaTaskEnergy(g.Weight(i), smax, alpha)
		}
		t.Addf(alpha, closed.Energy, numeric.Energy,
			relDiff(closed.Energy, numeric.Energy), allmax/closed.Energy)
	}
	t.Notes = append(t.Notes,
		"Expected shape: algebra = numeric for every α (the Theorem 2 structure is exponent-independent); the all-max/optimal gain grows with α — the cubic model is where speed scaling pays most.")
	return t, nil
}

// AblationMapping (A3) varies the *given* mapping: the paper optimizes
// speeds for a fixed mapping, so how much does mapping quality matter after
// reclaiming? List scheduling vs round-robin vs single processor, identical
// application and absolute deadline.
func AblationMapping(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 22))
	t := &Table{
		ID:      "A3",
		Title:   "Mapping sensitivity: continuous-optimal energy for three given mappings (same absolute deadline)",
		Columns: []string{"mapping", "procs", "Dmin", "feasible", "E continuous"},
	}
	const smax = 2.0
	layers, width := cfg.pick(5, 3), cfg.pick(4, 3)
	app := graph.Layered(rng, layers, width, 0.35, graph.UniformWeights(1, 5))
	builders := []struct {
		name  string
		build func() (*platform.Mapping, error)
	}{
		{"list-4", func() (*platform.Mapping, error) { return platform.ListSchedule(app, 4) }},
		{"round-robin-4", func() (*platform.Mapping, error) { return platform.RoundRobin(app, 4) }},
		{"single-proc", func() (*platform.Mapping, error) { return platform.SingleProcessor(app) }},
	}
	// Deadline: twice the best mapping's Dmin — loose for the good mapping,
	// possibly tight or infeasible for the bad ones.
	listMap, err := platform.ListSchedule(app, 4)
	if err != nil {
		return nil, err
	}
	egBest, err := platform.BuildExecutionGraph(app, listMap)
	if err != nil {
		return nil, err
	}
	dminBest, err := egBest.MinimalDeadline(smax)
	if err != nil {
		return nil, err
	}
	D := dminBest * 2
	for _, b := range builders {
		m, err := b.build()
		if err != nil {
			return nil, err
		}
		eg, err := platform.BuildExecutionGraph(app, m)
		if err != nil {
			return nil, err
		}
		dmin, err := eg.MinimalDeadline(smax)
		if err != nil {
			return nil, err
		}
		p, err := core.NewProblem(eg, D)
		if err != nil {
			return nil, err
		}
		sol, err := p.SolveContinuous(smax, core.ContinuousOptions{})
		if err != nil {
			t.Addf(b.name, m.NumProcs(), dmin, false, math.Inf(1))
			continue
		}
		t.Addf(b.name, m.NumProcs(), dmin, true, sol.Energy)
	}
	t.Notes = append(t.Notes,
		"Expected shape: heavier serialization raises Dmin — the fully serialized mapping is typically infeasible at this deadline, which is exactly why the paper treats the mapping as an unchangeable input.",
		"Second-order finding: among feasible mappings, the makespan-optimal one need not be energy-optimal — energy reclaiming rewards load balance over critical-path length, so round-robin can edge out list scheduling once speeds are optimized.")
	return t, nil
}

// AblationSwitching (A4) quantifies the paper's concluding argument: Vdd-
// Hopping smooths discrete modes by switching speed *mid-task* — which real
// hardware pays for per hop (Miermont et al.'s supply selector, the paper's
// [6]) — while the Incremental model reaches similar energy with a finer
// grid and zero switches. For each mode count m, compare the exact Discrete
// optimum, the Vdd optimum (with its switch count), and the exact optimum
// on an Incremental grid with the same number of speed levels.
func AblationSwitching(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 23))
	t := &Table{
		ID:    "A4",
		Title: "Vdd-Hopping vs Incremental: energy vs mid-task switching (ratios to continuous)",
		Columns: []string{"m", "disc-geom/cont", "vdd-geom/cont", "vdd switches",
			"incr-even/cont (same m)", "incr switches"},
	}
	counts := []int{2, 3, 4, 6, 8}
	if cfg.Quick {
		counts = []int{2, 4}
	}
	const smin, smax = 0.5, 2.0
	// A series-parallel workload keeps the exact discrete solves cheap even
	// at m = 8 (Pareto DP); the LP does not care about the shape.
	spg, expr := graph.RandomSP(rng, cfg.pick(14, 8), graph.UniformWeights(1, 5))
	dmin, err := spg.MinimalDeadline(smax)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(spg, dmin*1.6)
	if err != nil {
		return nil, err
	}
	cont, err := p.SolveContinuous(smax, core.ContinuousOptions{})
	if err != nil {
		return nil, err
	}
	for _, m := range counts {
		// Geometrically spaced modes: a realistic, irregular DVFS table —
		// the setting the paper's Discrete model allows and Vdd smooths.
		modes := make([]float64, m)
		for i := range modes {
			modes[i] = smin * math.Pow(smax/smin, float64(i)/math.Max(1, float64(m-1)))
		}
		dm, _ := model.NewDiscrete(modes)
		disc, err := p.SolveDiscreteSP(dm, expr, core.DiscreteOptions{})
		if err != nil {
			return nil, err
		}
		vm, _ := model.NewVddHopping(modes)
		vdd, err := p.SolveVddHopping(vm)
		if err != nil {
			return nil, err
		}
		vddSwitches := 0
		for _, prof := range vdd.Schedule.Profiles {
			vddSwitches += prof.Switches()
		}
		im, err := model.NewIncremental(smin, smax, (smax-smin)/float64(m-1))
		if err != nil {
			return nil, err
		}
		incr, err := p.SolveDiscreteSP(im, expr, core.DiscreteOptions{})
		if err != nil {
			return nil, err
		}
		t.Addf(m, disc.Energy/cont.Energy, vdd.Energy/cont.Energy, vddSwitches,
			incr.Energy/cont.Energy, 0)
	}
	t.Notes = append(t.Notes,
		"Expected shape: Vdd beats Discrete at every m but needs O(n) mid-task switches to do it; the evenly spaced Incremental grid closes most of the same gap with zero switches — the conclusion's 'simpler in practice' argument, quantified.")
	return t, nil
}
