package exps

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 42, Quick: true} }

// parseCell converts a rendered cell back to float64.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tab.Addf(1, "x,y")
	tab.Notes = append(tab.Notes, "note")
	md := tab.Markdown()
	if !strings.Contains(md, "### X — demo") || !strings.Contains(md, "| a | b |") {
		t.Fatalf("markdown:\n%s", md)
	}
	if !strings.Contains(md, "> note") {
		t.Fatal("note missing")
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("csv quoting broken:\n%s", csv)
	}
}

func TestTableAddPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab := &Table{ID: "X", Columns: []string{"a", "b"}}
	tab.Add("only-one")
}

func TestTable1ForkAgreement(t *testing.T) {
	tab, err := Table1Fork(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	sawSaturated := false
	for _, row := range tab.Rows {
		if d := parseCell(t, row[5]); d > 1e-3 {
			t.Fatalf("closed form and numeric disagree: %v", row)
		}
		if row[2] == "saturated" {
			sawSaturated = true
		}
	}
	if !sawSaturated {
		t.Fatal("tight deadlines never hit the saturated Theorem 1 branch")
	}
}

func TestTable2TreeSPAgreement(t *testing.T) {
	tab, err := Table2TreeSP(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if d := parseCell(t, row[4]); d > 1e-3 {
			t.Fatalf("algebra and numeric disagree: %v", row)
		}
	}
}

func TestTable3VddHierarchy(t *testing.T) {
	tab, err := Table3Vdd(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[5] != "yes" {
			t.Fatalf("hierarchy violated: %v", row)
		}
	}
}

func TestTable4HardnessMonotonicity(t *testing.T) {
	tab, err := Table4Hardness(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatal("need at least two sizes")
	}
	// BB nodes at the largest size exceed those at the smallest — the
	// qualitative exponential-vs-polynomial contrast of Theorem 4.
	first := parseCell(t, tab.Rows[0][1])
	last := parseCell(t, tab.Rows[len(tab.Rows)-1][1])
	if last < first {
		t.Fatalf("BB nodes did not grow: %v → %v", first, last)
	}
}

func TestTable5WithinBound(t *testing.T) {
	tab, err := Table5Approx(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "yes" {
			t.Fatalf("bound violated: %v", row)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	tab, err := Figure1DeadlineSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for col := 2; col <= 7; col++ {
			if r := parseCell(t, row[col]); r < 1-1e-6 {
				t.Fatalf("ratio below 1 in column %d: %v", col, row)
			}
		}
		vdd := parseCell(t, row[2])
		roundup := parseCell(t, row[4])
		if vdd > roundup*(1+1e-6) {
			t.Fatalf("vdd worse than discrete round-up: %v", row)
		}
	}
	// All-max ratio grows with β.
	firstAllMax := parseCell(t, tab.Rows[0][7])
	lastAllMax := parseCell(t, tab.Rows[len(tab.Rows)-1][7])
	if lastAllMax <= firstAllMax {
		t.Fatalf("all-max ratio did not grow with β: %v → %v", firstAllMax, lastAllMax)
	}
}

func TestFigure2Convergence(t *testing.T) {
	tab, err := Figure2ModeCount(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	n := len(tab.Rows)
	firstExact := parseCell(t, tab.Rows[0][3])
	lastExact := parseCell(t, tab.Rows[n-1][3])
	if lastExact > firstExact*(1+1e-9) {
		t.Fatalf("discrete exact ratio did not improve with more modes: %v → %v", firstExact, lastExact)
	}
	for _, row := range tab.Rows {
		vdd := parseCell(t, row[1])
		exact := parseCell(t, row[3])
		if vdd > exact*(1+1e-6) {
			t.Fatalf("vdd worse than discrete exact: %v", row)
		}
	}
}

func TestFigure3BoundCurve(t *testing.T) {
	tab, err := Figure3DeltaSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := len(tab.Rows) - 1; i >= 0; i-- { // δ decreasing along rows; iterate increasing δ
		row := tab.Rows[i]
		ratio := parseCell(t, row[2])
		bound := parseCell(t, row[3])
		if ratio > bound*(1+1e-6) || ratio < 1-1e-6 {
			t.Fatalf("ratio %v outside [1, bound %v]", ratio, bound)
		}
		if prev >= 0 && ratio < prev-1e-9 {
			t.Fatalf("ratio should shrink with δ: %v then %v", ratio, prev)
		}
		prev = ratio
	}
}

func TestFigure4BoundCurve(t *testing.T) {
	tab, err := Figure4KSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio := parseCell(t, row[1])
		bound := parseCell(t, row[2])
		if ratio > bound*(1+1e-6) || ratio < 1-1e-6 {
			t.Fatalf("K-sweep ratio %v outside [1, %v]", ratio, bound)
		}
	}
}

func TestFigure5Runs(t *testing.T) {
	tab, err := Figure5Scaling(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for col := 1; col <= 4; col++ {
			if v := parseCell(t, row[col]); v < 0 {
				t.Fatalf("negative duration: %v", row)
			}
		}
	}
}

func TestAblationGranularityHierarchy(t *testing.T) {
	tab, err := AblationGranularity(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		perProc := parseCell(t, row[2])
		uniform := parseCell(t, row[3])
		allmax := parseCell(t, row[4])
		if perProc < 1-1e-6 || uniform < perProc-1e-6 || allmax < uniform-1e-6 {
			t.Fatalf("granularity hierarchy violated: %v", row)
		}
	}
}

func TestAblationAlphaAgreementAndGain(t *testing.T) {
	tab, err := AblationAlpha(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prevGain := 0.0
	for _, row := range tab.Rows {
		if d := parseCell(t, row[3]); d > 1e-3 {
			t.Fatalf("α algebra and numeric disagree: %v", row)
		}
		gain := parseCell(t, row[4])
		if gain < prevGain-1e-9 {
			t.Fatalf("reclaiming gain should grow with α: %v", tab.Rows)
		}
		prevGain = gain
	}
}

func TestAblationMappingOrdering(t *testing.T) {
	tab, err := AblationMapping(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 mappings, got %d", len(tab.Rows))
	}
	// The list-scheduled mapping is always feasible at D = 2·its Dmin.
	if tab.Rows[0][3] != "yes" {
		t.Fatalf("list mapping infeasible: %v", tab.Rows[0])
	}
	// Single-processor serializes everything: its Dmin is the largest.
	dminList := parseCell(t, tab.Rows[0][2])
	dminSingle := parseCell(t, tab.Rows[2][2])
	if dminSingle < dminList {
		t.Fatalf("single-proc Dmin %v below list Dmin %v", dminSingle, dminList)
	}
	// When feasible, the single-processor mapping costs at least as much.
	if tab.Rows[2][3] == "yes" {
		eList := parseCell(t, tab.Rows[0][4])
		eSingle := parseCell(t, tab.Rows[2][4])
		if eSingle < eList-1e-6 {
			t.Fatalf("serialized mapping beat the parallel one: %v", tab.Rows)
		}
	}
}

func TestAblationSwitchingShape(t *testing.T) {
	tab, err := AblationSwitching(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		disc := parseCell(t, row[1])
		vdd := parseCell(t, row[2])
		incr := parseCell(t, row[4])
		if vdd > disc*(1+1e-6) {
			t.Fatalf("vdd worse than discrete on the same modes: %v", row)
		}
		if disc < 1-1e-6 || vdd < 1-1e-6 || incr < 1-1e-6 {
			t.Fatalf("ratio below continuous: %v", row)
		}
		if row[5] != "0" {
			t.Fatalf("incremental should need zero switches: %v", row)
		}
	}
	// Vdd needs real switching on at least one mode count.
	anySwitch := false
	for _, row := range tab.Rows {
		if parseCell(t, row[3]) > 0 {
			anySwitch = true
		}
	}
	if !anySwitch {
		t.Fatal("vdd never switched — comparison is vacuous")
	}
}

func TestRunAllWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := RunAll(&buf, dir, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"T1", "T2", "T3", "T4", "T5", "F1", "F2", "F3", "F4", "F5", "A1", "A2", "A3", "A4"} {
		if !strings.Contains(out, "### "+id) {
			t.Fatalf("markdown missing %s", id)
		}
		data, err := os.ReadFile(filepath.Join(dir, id+".csv"))
		if err != nil {
			t.Fatalf("csv for %s: %v", id, err)
		}
		if len(data) == 0 {
			t.Fatalf("empty csv for %s", id)
		}
	}
}
