package exps

import (
	"strings"
	"testing"
)

func demoTable() *Table {
	t := &Table{
		ID:      "D",
		Title:   "demo",
		Columns: []string{"x", "a/b", "c"},
	}
	t.Addf(1.0, 1.0, 10.0)
	t.Addf(2.0, 2.0, 20.0)
	t.Addf(3.0, 4.0, 40.0)
	return t
}

func TestPlotRendersSeries(t *testing.T) {
	tab := demoTable()
	out := tab.Plot(0, []int{1, 2}, 30, 10, false)
	if !strings.Contains(out, "* a/b") || !strings.Contains(out, "o c") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "+------") {
		t.Fatalf("axis missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("points missing:\n%s", out)
	}
}

func TestPlotLogScale(t *testing.T) {
	tab := demoTable()
	out := tab.Plot(0, []int{2}, 30, 10, true)
	// Log scale labels de-log: the max label should be 40, not log10(40).
	if !strings.Contains(out, "40") {
		t.Fatalf("log labels wrong:\n%s", out)
	}
}

func TestPlotSkipsNonNumeric(t *testing.T) {
	tab := &Table{ID: "D", Columns: []string{"x", "y"}}
	tab.Add("oops", "1")
	tab.Add("2", "not-a-number")
	out := tab.Plot(0, []int{1}, 30, 8, false)
	if !strings.Contains(out, "no numeric data") {
		t.Fatalf("expected empty-plot message:\n%s", out)
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	tab := &Table{ID: "D", Columns: []string{"x", "y"}}
	tab.Addf(1.0, 5.0)
	tab.Addf(1.0, 5.0) // identical points: ranges collapse
	out := tab.Plot(0, []int{1}, 30, 8, false)
	if out == "" || strings.Contains(out, "NaN") {
		t.Fatalf("degenerate plot broken:\n%s", out)
	}
}

func TestDefaultPlotPicksRatioColumns(t *testing.T) {
	tab := demoTable()
	out := tab.DefaultPlot(30, 10, false)
	if !strings.Contains(out, "a/b") {
		t.Fatalf("ratio column not plotted:\n%s", out)
	}
	if strings.Contains(out, "o c") {
		t.Fatalf("non-ratio column should be skipped when ratios exist:\n%s", out)
	}
	// With no ratio columns, everything numeric is plotted.
	plain := &Table{ID: "D", Columns: []string{"x", "y"}}
	plain.Addf(1.0, 2.0)
	plain.Addf(2.0, 3.0)
	if !strings.Contains(plain.DefaultPlot(30, 8, false), "* y") {
		t.Fatal("fallback columns not plotted")
	}
}

func TestFigureTablesPlot(t *testing.T) {
	// Every figure experiment should produce a plottable table.
	for _, exp := range All() {
		if exp.ID[0] != 'F' {
			continue
		}
		tab, err := exp.Run(quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		out := tab.DefaultPlot(50, 12, exp.ID == "F1")
		if strings.Contains(out, "no numeric data") {
			t.Fatalf("%s produced an unplottable table:\n%s", exp.ID, tab.Markdown())
		}
	}
}
