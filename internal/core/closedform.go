package core

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Closed-form continuous solutions for the structured graphs of the paper.

// SolveChainContinuous solves MinEnergy on a chain execution graph under the
// Continuous model: by convexity every task runs at the common speed
// s = (Σ wᵢ)/D (uniquely optimal), infeasible when s > smax.
func (p *Problem) SolveChainContinuous(smax float64) (*Solution, error) {
	order, ok := p.G.IsChain()
	if !ok {
		return nil, fmt.Errorf("core: graph is not a chain")
	}
	s := p.G.TotalWeight() / p.Deadline
	if s > smax*(1+1e-12) {
		return nil, fmt.Errorf("%w: chain needs speed %.9g > smax %.9g", ErrInfeasible, s, smax)
	}
	speeds := make([]float64, p.G.N())
	for _, t := range order {
		speeds[t] = math.Min(s, smax)
	}
	m, err := model.NewContinuous(smax)
	if err != nil {
		return nil, err
	}
	return p.solutionFromSpeeds(m, speeds, Stats{Algorithm: "chain-closed-form", Exact: true, BoundFactor: 1})
}

// SolveForkContinuous solves MinEnergy on a fork graph (source T0 plus
// leaves T1..Tn) under the Continuous model, exactly as Theorem 1 states:
//
//	s₀ = ((Σ wᵢ³)^(1/3) + w₀) / D,  sᵢ = s₀ · wᵢ / (Σ wᵢ³)^(1/3)
//
// when s₀ ≤ smax; otherwise T0 runs at smax and the leaves share the
// remaining window D' = D - w₀/smax at speeds wᵢ/D' (each capped by the
// feasibility check), and when even that exceeds smax the instance is
// infeasible.
func (p *Problem) SolveForkContinuous(smax float64) (*Solution, error) {
	src, ok := p.G.IsFork()
	if !ok {
		return nil, fmt.Errorf("core: graph is not a fork")
	}
	n := p.G.N()
	w0 := p.G.Weight(src)
	sumCubes := 0.0
	for i := 0; i < n; i++ {
		if i == src {
			continue
		}
		sumCubes += math.Pow(p.G.Weight(i), 3)
	}
	croot := math.Cbrt(sumCubes)
	D := p.Deadline
	speeds := make([]float64, n)
	s0 := (croot + w0) / D
	if s0 <= smax*(1+1e-12) {
		speeds[src] = math.Min(s0, smax)
		for i := 0; i < n; i++ {
			if i == src {
				continue
			}
			speeds[i] = s0 * p.G.Weight(i) / croot
		}
	} else {
		// Saturated branch of Theorem 1.
		speeds[src] = smax
		dprime := D - w0/smax
		if dprime <= 0 {
			return nil, fmt.Errorf("%w: source alone exceeds the deadline at smax", ErrInfeasible)
		}
		for i := 0; i < n; i++ {
			if i == src {
				continue
			}
			si := p.G.Weight(i) / dprime
			if si > smax*(1+1e-12) {
				return nil, fmt.Errorf("%w: leaf %d needs speed %.9g > smax %.9g", ErrInfeasible, i, si, smax)
			}
			speeds[i] = math.Min(si, smax)
		}
	}
	m, err := model.NewContinuous(smax)
	if err != nil {
		return nil, err
	}
	return p.solutionFromSpeeds(m, speeds, Stats{Algorithm: "fork-closed-form", Exact: true, BoundFactor: 1})
}

// ForkOptimalEnergy returns Theorem 1's optimal energy value for a fork with
// source weight w0, leaf weights w, deadline D and bound smax — useful as an
// independent oracle in tests and experiments.
func ForkOptimalEnergy(w0 float64, w []float64, D, smax float64) (float64, error) {
	sumCubes := 0.0
	for _, x := range w {
		sumCubes += math.Pow(x, 3)
	}
	croot := math.Cbrt(sumCubes)
	s0 := (croot + w0) / D
	if s0 <= smax {
		// E = w0·s0² + Σ wᵢ·sᵢ² with sᵢ = s0·wᵢ/croot:
		// Σ wᵢ³ · s0²/croot² = croot·s0².
		return (w0 + croot) * s0 * s0, nil
	}
	dprime := D - w0/smax
	if dprime <= 0 {
		return 0, ErrInfeasible
	}
	e := w0 * smax * smax
	for _, x := range w {
		si := x / dprime
		if si > smax*(1+1e-12) {
			return 0, ErrInfeasible
		}
		e += x * si * si
	}
	return e, nil
}
