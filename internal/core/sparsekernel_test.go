package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/workload"
)

// The sparse-kernel equivalence suite: the graph-structured sparse LDLᵀ
// path of the interior-point solver must agree with the dense reference
// kernel to 1e-9 (speeds and energy) across every workload family and
// all four solve-option variants — cold, warm-started, release-times,
// and SMin-banded. The dense path is the oracle; the sparse path is what
// production runs.

// sparseDenseVariant names one ContinuousOptions shape of the matrix.
type sparseDenseVariant struct {
	name  string
	setup func(p *Problem, cold *Solution) (ContinuousOptions, bool)
}

func sparseDenseVariants() []sparseDenseVariant {
	return []sparseDenseVariant{
		{"cold", func(p *Problem, cold *Solution) (ContinuousOptions, bool) {
			return ContinuousOptions{}, true
		}},
		{"warm", func(p *Problem, cold *Solution) (ContinuousOptions, bool) {
			if cold == nil {
				return ContinuousOptions{}, false
			}
			speeds, err := cold.Speeds()
			if err != nil {
				return ContinuousOptions{}, false
			}
			return ContinuousOptions{Warm: &WarmStart{Speeds: speeds}}, true
		}},
		{"release", func(p *Problem, cold *Solution) (ContinuousOptions, bool) {
			release := make([]float64, p.G.N())
			for i := range release {
				// Stagger a mild release ramp; sources feel it, the rest
				// absorb it through the precedence rows.
				release[i] = 0.02 * p.Deadline * float64(i%4) / 4
			}
			return ContinuousOptions{Release: release}, true
		}},
		{"smin", func(p *Problem, cold *Solution) (ContinuousOptions, bool) {
			return ContinuousOptions{SMin: 0.3}, true
		}},
	}
}

func TestSparseKernelMatchesDenseAcrossFamilies(t *testing.T) {
	const smax = 2.0
	families := []struct {
		family string
		n      int
		seed   int64
	}{
		{"chain", 14, 1},
		{"fork", 8, 2},
		{"join", 8, 3},
		{"forkjoin", 4, 4},
		{"layered", 14, 5},
		{"gnp", 14, 6},
		{"tree", 12, 7},
		{"intree", 12, 8},
		{"sp", 14, 9},
		{"lu", 3, 10},
		{"stencil", 4, 11},
		{"fft", 3, 12},
		{"pipeline", 4, 13},
		{"mapreduce", 6, 14},
		{"multi", 2, 15},
	}
	for _, fc := range families {
		g, err := workload.FromSeed(fc.family, fc.n, fc.seed, 0.5, 3)
		if err != nil {
			t.Fatalf("%s: generate: %v", fc.family, err)
		}
		dmin, err := g.MinimalDeadline(smax)
		if err != nil {
			t.Fatalf("%s: minimal deadline: %v", fc.family, err)
		}
		p, err := NewProblem(g, dmin*1.5)
		if err != nil {
			t.Fatalf("%s: problem: %v", fc.family, err)
		}
		cold, err := p.SolveContinuousNumeric(smax, ContinuousOptions{})
		if err != nil {
			t.Fatalf("%s: cold solve: %v", fc.family, err)
		}
		for _, v := range sparseDenseVariants() {
			opts, ok := v.setup(p, cold)
			if !ok {
				continue
			}
			sparse, err := p.SolveContinuousNumeric(smax, opts)
			if err != nil {
				t.Fatalf("%s/%s: sparse solve: %v", fc.family, v.name, err)
			}
			opts.DenseKernel = true
			dense, err := p.SolveContinuousNumeric(smax, opts)
			if err != nil {
				t.Fatalf("%s/%s: dense solve: %v", fc.family, v.name, err)
			}
			if rel := math.Abs(sparse.Energy-dense.Energy) / math.Max(1, dense.Energy); rel > 1e-9 {
				t.Errorf("%s/%s: energy sparse %.15g dense %.15g (rel %g)",
					fc.family, v.name, sparse.Energy, dense.Energy, rel)
			}
			ss, err := sparse.Speeds()
			if err != nil {
				t.Fatalf("%s/%s: sparse speeds: %v", fc.family, v.name, err)
			}
			ds, err := dense.Speeds()
			if err != nil {
				t.Fatalf("%s/%s: dense speeds: %v", fc.family, v.name, err)
			}
			for i := range ss {
				if d := math.Abs(ss[i] - ds[i]); d > 1e-9*(1+ds[i]) {
					t.Errorf("%s/%s: speed[%d] sparse %.15g dense %.15g",
						fc.family, v.name, i, ss[i], ds[i])
					break
				}
			}
		}
	}
}

func TestSparseKernelMatchesDenseAlpha(t *testing.T) {
	g, err := workload.FromSeed("layered", 12, 21, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	dmin, err := g.MinimalDeadline(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, dmin*1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{1.6, 2.2, 3} {
		sparse, err := p.SolveContinuousNumericAlpha(2, alpha, ContinuousOptions{})
		if err != nil {
			t.Fatalf("alpha %g sparse: %v", alpha, err)
		}
		dense, err := p.SolveContinuousNumericAlpha(2, alpha, ContinuousOptions{DenseKernel: true})
		if err != nil {
			t.Fatalf("alpha %g dense: %v", alpha, err)
		}
		if rel := math.Abs(sparse.Energy-dense.Energy) / math.Max(1, dense.Energy); rel > 1e-9 {
			t.Errorf("alpha %g: energy sparse %.15g dense %.15g", alpha, sparse.Energy, dense.Energy)
		}
	}
}

// TestSparseKernelLargeChain pins the asymptotic win: a 2048-task chain
// through the interior-point kernel (bypassing the closed form) solves in
// seconds on the sparse path — its KKT systems are tridiagonal-like and
// factor with zero fill — where the dense path's O(n³) factorization per
// Newton step is computationally out of reach. The wall-clock bound is
// deliberately loose (CI machines vary); the committed BENCH_baseline.json
// records the measured number.
func TestSparseKernelLargeChain(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N kernel test skipped in -short")
	}
	const n = 2048
	g, err := workload.FromSeed("chain", n, 99, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	dmin, err := g.MinimalDeadline(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, dmin*1.4)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sol, err := p.SolveContinuousNumeric(2, ContinuousOptions{})
	if err != nil {
		t.Fatalf("sparse solve of %d-task chain: %v", n, err)
	}
	elapsed := time.Since(start)
	t.Logf("%d-task chain: %.3fs, %d Newton iterations, energy %.6g",
		n, elapsed.Seconds(), sol.Stats.Newton, sol.Energy)
	if elapsed > 15*time.Second {
		t.Fatalf("sparse kernel took %.1fs on a %d-task chain; want seconds, not minutes", elapsed.Seconds(), n)
	}
	// The chain closed form is the exact optimum: the kernel must agree.
	closed, err := p.SolveChainContinuous(2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sol.Energy-closed.Energy) / closed.Energy; rel > 1e-6 {
		t.Fatalf("kernel energy %.9g vs closed form %.9g (rel %g)", sol.Energy, closed.Energy, rel)
	}
}
