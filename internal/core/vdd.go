package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/sched"
)

// Theorem 3: with the Vdd-Hopping model, MinEnergy(G, D) is a linear
// program. Variables: α(i,j) ≥ 0, the time task i spends at mode sⱼ, and
// tᵢ ≥ 0, the completion time of task i.
//
//	minimize   Σᵢⱼ sⱼ³ · α(i,j)                     (energy)
//	subject to Σⱼ sⱼ · α(i,j)  =  wᵢ                (work completion)
//	           tᵤ + Σⱼ α(v,j) − t_v ≤ 0             for every edge (u,v)
//	           Σⱼ α(i,j) − tᵢ ≤ 0                   (start ≥ 0)
//	           tᵢ ≤ D

// VddOptions tunes the Vdd-Hopping LP.
type VddOptions struct {
	// Release gives each task an earliest permitted start (residual
	// re-solves of an executing schedule); nil means zeros.
	Release []float64
	// Warm prunes each task's mode set to the window bracketing its
	// previous profile (one mode of margin each side). The restriction is
	// accepted only when its own solution certifies global optimality —
	// no task leans on a window edge that is not a global edge — so the
	// answer always matches the full LP; otherwise the full program runs.
	Warm *WarmStart
}

// SolveVddHopping solves the LP exactly and extracts per-task speed
// profiles. The returned solution is optimal for the Vdd-Hopping model.
func (p *Problem) SolveVddHopping(m model.Model) (*Solution, error) {
	return p.SolveVddHoppingOpts(m, VddOptions{})
}

// SolveVddHoppingOpts is SolveVddHopping with residual release times and an
// optional warm start (see VddOptions). The result is always the exact
// optimum of the (release-constrained) Vdd-Hopping program.
func (p *Problem) SolveVddHoppingOpts(m model.Model, opts VddOptions) (*Solution, error) {
	if m.Kind != model.VddHopping {
		return nil, fmt.Errorf("core: SolveVddHopping needs a Vdd-Hopping model, got %s", m.Kind)
	}
	if err := p.CheckFeasibleFrom(m.SMax, opts.Release); err != nil {
		return nil, err
	}
	release := opts.Release
	if release != nil && !hasRelease(release) {
		release = nil
	}
	windows := vddWarmWindows(p, m, opts.Warm)
	for round := 0; round < 2 && windows != nil; round++ {
		sol, failed, err := p.solveVddLP(m, release, windows)
		if err != nil {
			break // restriction infeasible or degenerate: full program
		}
		if len(failed) == 0 {
			return sol, nil
		}
		// The optimum leans on a window edge for these tasks: widen only
		// them (two modes each side) and retry — one failing task must
		// not throw away the restriction for the other n−1.
		windows = widenVddWindows(windows, failed, m.NumModes())
	}
	sol, _, err := p.solveVddLP(m, release, nil)
	return sol, err
}

// widenVddWindows grows the failing tasks' windows by two modes each side;
// returns nil when the result no longer restricts anything (full ladder
// everywhere — the caller should run the unrestricted program).
func widenVddWindows(windows [][2]int, failed []int, nm int) [][2]int {
	for _, i := range failed {
		lo, hi := windows[i][0]-2, windows[i][1]+2
		if lo < 0 {
			lo = 0
		}
		if hi > nm-1 {
			hi = nm - 1
		}
		windows[i] = [2]int{lo, hi}
	}
	for _, w := range windows {
		if w[1]-w[0]+1 < nm {
			return windows
		}
	}
	return nil
}

// vddWarmWindows derives per-task mode windows [lo, hi] (inclusive indices
// into m.Modes) from a previous solution's profiles: the modes the task
// used, widened by one admissible mode on each side. Returns nil when warm
// data is absent, malformed, or no task's window is narrower than the full
// ladder (restriction would buy nothing).
func vddWarmWindows(p *Problem, m model.Model, warm *WarmStart) [][2]int {
	n := p.G.N()
	if warm == nil || len(warm.Profiles) != n {
		return nil
	}
	nm := m.NumModes()
	if nm <= 2 {
		return nil
	}
	windows := make([][2]int, n)
	narrower := false
	for i, prof := range warm.Profiles {
		lo, hi := nm, -1
		for _, seg := range prof {
			if seg.Duration <= 1e-12 {
				continue
			}
			idx := -1
			for j, s := range m.Modes {
				if math.Abs(seg.Speed-s) <= 1e-9*math.Max(1, s) {
					idx = j
					break
				}
			}
			if idx < 0 {
				return nil // previous profile speaks another mode ladder
			}
			if idx < lo {
				lo = idx
			}
			if idx > hi {
				hi = idx
			}
		}
		if hi < 0 {
			return nil // empty profile: no usable warm data
		}
		lo--
		hi++
		if lo < 0 {
			lo = 0
		}
		if hi > nm-1 {
			hi = nm - 1
		}
		windows[i] = [2]int{lo, hi}
		if hi-lo+1 < nm {
			narrower = true
		}
	}
	if !narrower {
		return nil
	}
	return windows
}

// solveVddLP assembles and solves the Theorem 3 program over per-task mode
// subsets (windows nil = the full ladder) with optional release times. The
// second result is the optimality certificate's failure set: tasks whose
// solution uses a window-edge mode that is not also a global edge. When it
// is empty, the per-task energy envelopes agree with the full ladder in a
// neighborhood of the optimum, so by convexity the restricted optimum is
// the global one.
func (p *Problem) solveVddLP(m model.Model, release []float64, windows [][2]int) (*Solution, []int, error) {
	n := p.G.N()
	nm := m.NumModes()
	win := func(i int) (int, int) {
		if windows == nil {
			return 0, nm - 1
		}
		return windows[i][0], windows[i][1]
	}
	// Variable layout: per-task α blocks (window-sized), then the n
	// completion times.
	offset := make([]int, n+1)
	for i := 0; i < n; i++ {
		lo, hi := win(i)
		offset[i+1] = offset[i] + (hi - lo + 1)
	}
	nalpha := offset[n]
	nvar := nalpha + n
	alphaIdx := func(i, j int) int { lo, _ := win(i); return offset[i] + j - lo }
	tIdx := func(i int) int { return nalpha + i }

	c := make([]float64, nvar)
	for i := 0; i < n; i++ {
		lo, hi := win(i)
		for j := lo; j <= hi; j++ {
			c[alphaIdx(i, j)] = model.Power(m.Modes[j])
		}
	}
	prob := lp.NewProblem(c)
	// Work completion.
	for i := 0; i < n; i++ {
		row := make([]float64, nvar)
		lo, hi := win(i)
		for j := lo; j <= hi; j++ {
			row[alphaIdx(i, j)] = m.Modes[j]
		}
		prob.AddConstraint(row, lp.EQ, p.G.Weight(i))
	}
	// Precedence.
	for _, e := range p.G.Edges() {
		row := make([]float64, nvar)
		row[tIdx(e[0])] = 1
		lo, hi := win(e[1])
		for j := lo; j <= hi; j++ {
			row[alphaIdx(e[1], j)] = 1
		}
		row[tIdx(e[1])] = -1
		prob.AddConstraint(row, lp.LE, 0)
	}
	// Start ≥ release (0 by default) and deadline.
	for i := 0; i < n; i++ {
		row := make([]float64, nvar)
		lo, hi := win(i)
		for j := lo; j <= hi; j++ {
			row[alphaIdx(i, j)] = 1
		}
		row[tIdx(i)] = -1
		rhs := 0.0
		if release != nil {
			rhs = -release[i]
		}
		prob.AddConstraint(row, lp.LE, rhs)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, nvar)
		row[tIdx(i)] = 1
		prob.AddConstraint(row, lp.LE, p.Deadline)
	}

	res, err := lp.Solve(prob, lp.Options{})
	if err != nil {
		return nil, nil, err
	}
	switch res.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, nil, fmt.Errorf("%w: Vdd-Hopping LP infeasible", ErrInfeasible)
	default:
		return nil, nil, fmt.Errorf("core: Vdd-Hopping LP ended with status %s", res.Status)
	}

	// Extract profiles (fastest mode first so precedence-critical work
	// happens early within each task's window — ordering inside a task
	// changes neither energy nor feasibility) and check the certificate.
	var failed []int
	profiles := make([]sched.Profile, n)
	for i := 0; i < n; i++ {
		var prof sched.Profile
		lo, hi := win(i)
		taskFailed := false
		for j := hi; j >= lo; j-- {
			d := res.X[alphaIdx(i, j)]
			if d > 1e-12 {
				prof = append(prof, sched.Segment{Speed: m.Modes[j], Duration: d})
				if windows != nil {
					if (j == lo && lo > 0) || (j == hi && hi < nm-1) {
						taskFailed = true
					}
				}
			}
		}
		if taskFailed {
			failed = append(failed, i)
		}
		// Guard against tiny work deficits from LP roundoff: rescale the
		// profile so the executed work matches wᵢ exactly.
		work := prof.Work()
		w := p.G.Weight(i)
		if work <= 0 {
			return nil, nil, fmt.Errorf("core: task %d received no execution time in LP solution", i)
		}
		if f := w / work; math.Abs(f-1) > 1e-15 {
			for k := range prof {
				prof[k].Duration *= f
			}
		}
		profiles[i] = prof
	}
	if len(failed) > 0 {
		return nil, failed, nil
	}
	s, err := sched.FromProfilesAt(p.G, profiles, release)
	if err != nil {
		return nil, nil, err
	}
	return &Solution{
		Model:    m,
		Schedule: s,
		Energy:   s.Energy,
		Stats:    Stats{Algorithm: "vdd-lp", Pivots: res.Pivots, Exact: true, BoundFactor: 1},
	}, nil, nil
}

// SolveVddTwoMode is the constructive upper bound used to cross-check the
// LP: solve the Continuous model with smax = top mode, then emulate each
// continuous speed s* by its two bracketing modes within the same duration
// (the Ishihara–Yasuura two-voltage argument: that mix is the cheapest way
// to do w units of work in exactly w/s* time). It is optimal per-task given
// the continuous durations, hence E_vdd-lp ≤ E_two-mode always, with
// equality whenever the continuous durations happen to be Vdd-optimal.
func (p *Problem) SolveVddTwoMode(m model.Model, opts ContinuousOptions) (*Solution, error) {
	if m.Kind != model.VddHopping {
		return nil, fmt.Errorf("core: SolveVddTwoMode needs a Vdd-Hopping model, got %s", m.Kind)
	}
	cont, err := p.SolveContinuous(m.SMax, opts)
	if err != nil {
		return nil, err
	}
	speeds, err := cont.Speeds()
	if err != nil {
		return nil, err
	}
	profiles := make([]sched.Profile, p.G.N())
	for i, sStar := range speeds {
		w := p.G.Weight(i)
		d := w / sStar
		// Clamp below the slowest mode: running faster than necessary at the
		// bottom mode only shortens the task (still feasible).
		if sStar < m.SMin {
			profiles[i] = sched.ConstantProfile(w, m.SMin)
			continue
		}
		lo, hi, err := m.Bracket(sStar)
		if err != nil {
			return nil, err
		}
		if hi-lo < 1e-12*hi { // s* is (numerically) a mode
			profiles[i] = sched.ConstantProfile(w, hi)
			continue
		}
		// Time x at hi, d-x at lo with lo(d-x) + hi·x = w.
		x := (w - lo*d) / (hi - lo)
		profiles[i] = sched.Profile{
			{Speed: hi, Duration: x},
			{Speed: lo, Duration: d - x},
		}
	}
	s, err := sched.FromProfiles(p.G, profiles)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Model:    m,
		Schedule: s,
		Energy:   s.Energy,
		Stats:    Stats{Algorithm: "vdd-two-mode", Exact: false, BoundFactor: 1},
	}, nil
}

// VddDistinctSpeedStats reports, for a Vdd solution, how many tasks use 1,
// 2, or more distinct speeds — the structural property (at most two
// adjacent modes per task at optimality) that motivates the model.
func VddDistinctSpeedStats(s *Solution, tol float64) map[int]int {
	out := make(map[int]int)
	for _, prof := range s.Schedule.Profiles {
		out[prof.DistinctSpeeds(tol)]++
	}
	// Deterministic iteration for printing: callers can sort keys.
	keys := make([]int, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return out
}
