package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/sched"
)

// Theorem 3: with the Vdd-Hopping model, MinEnergy(G, D) is a linear
// program. Variables: α(i,j) ≥ 0, the time task i spends at mode sⱼ, and
// tᵢ ≥ 0, the completion time of task i.
//
//	minimize   Σᵢⱼ sⱼ³ · α(i,j)                     (energy)
//	subject to Σⱼ sⱼ · α(i,j)  =  wᵢ                (work completion)
//	           tᵤ + Σⱼ α(v,j) − t_v ≤ 0             for every edge (u,v)
//	           Σⱼ α(i,j) − tᵢ ≤ 0                   (start ≥ 0)
//	           tᵢ ≤ D

// SolveVddHopping solves the LP exactly and extracts per-task speed
// profiles. The returned solution is optimal for the Vdd-Hopping model.
func (p *Problem) SolveVddHopping(m model.Model) (*Solution, error) {
	if m.Kind != model.VddHopping {
		return nil, fmt.Errorf("core: SolveVddHopping needs a Vdd-Hopping model, got %s", m.Kind)
	}
	if err := p.CheckFeasible(m.SMax); err != nil {
		return nil, err
	}
	n := p.G.N()
	nm := m.NumModes()
	nvar := n*nm + n
	alphaIdx := func(i, j int) int { return i*nm + j }
	tIdx := func(i int) int { return n*nm + i }

	c := make([]float64, nvar)
	for i := 0; i < n; i++ {
		for j := 0; j < nm; j++ {
			c[alphaIdx(i, j)] = model.Power(m.Modes[j])
		}
	}
	prob := lp.NewProblem(c)
	// Work completion.
	for i := 0; i < n; i++ {
		row := make([]float64, nvar)
		for j := 0; j < nm; j++ {
			row[alphaIdx(i, j)] = m.Modes[j]
		}
		prob.AddConstraint(row, lp.EQ, p.G.Weight(i))
	}
	// Precedence.
	for _, e := range p.G.Edges() {
		row := make([]float64, nvar)
		row[tIdx(e[0])] = 1
		for j := 0; j < nm; j++ {
			row[alphaIdx(e[1], j)] = 1
		}
		row[tIdx(e[1])] = -1
		prob.AddConstraint(row, lp.LE, 0)
	}
	// Start ≥ 0 and deadline.
	for i := 0; i < n; i++ {
		row := make([]float64, nvar)
		for j := 0; j < nm; j++ {
			row[alphaIdx(i, j)] = 1
		}
		row[tIdx(i)] = -1
		prob.AddConstraint(row, lp.LE, 0)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, nvar)
		row[tIdx(i)] = 1
		prob.AddConstraint(row, lp.LE, p.Deadline)
	}

	res, err := lp.Solve(prob, lp.Options{})
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("%w: Vdd-Hopping LP infeasible", ErrInfeasible)
	default:
		return nil, fmt.Errorf("core: Vdd-Hopping LP ended with status %s", res.Status)
	}

	// Extract profiles: fastest mode first so precedence-critical work
	// happens early within each task's window (ordering inside a task does
	// not change energy or feasibility).
	profiles := make([]sched.Profile, n)
	for i := 0; i < n; i++ {
		var prof sched.Profile
		for j := nm - 1; j >= 0; j-- {
			d := res.X[alphaIdx(i, j)]
			if d > 1e-12 {
				prof = append(prof, sched.Segment{Speed: m.Modes[j], Duration: d})
			}
		}
		// Guard against tiny work deficits from LP roundoff: rescale the
		// profile so the executed work matches wᵢ exactly.
		work := prof.Work()
		w := p.G.Weight(i)
		if work <= 0 {
			return nil, fmt.Errorf("core: task %d received no execution time in LP solution", i)
		}
		if f := w / work; math.Abs(f-1) > 1e-15 {
			for k := range prof {
				prof[k].Duration *= f
			}
		}
		profiles[i] = prof
	}
	s, err := sched.FromProfiles(p.G, profiles)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Model:    m,
		Schedule: s,
		Energy:   s.Energy,
		Stats:    Stats{Algorithm: "vdd-lp", Pivots: res.Pivots, Exact: true, BoundFactor: 1},
	}, nil
}

// SolveVddTwoMode is the constructive upper bound used to cross-check the
// LP: solve the Continuous model with smax = top mode, then emulate each
// continuous speed s* by its two bracketing modes within the same duration
// (the Ishihara–Yasuura two-voltage argument: that mix is the cheapest way
// to do w units of work in exactly w/s* time). It is optimal per-task given
// the continuous durations, hence E_vdd-lp ≤ E_two-mode always, with
// equality whenever the continuous durations happen to be Vdd-optimal.
func (p *Problem) SolveVddTwoMode(m model.Model, opts ContinuousOptions) (*Solution, error) {
	if m.Kind != model.VddHopping {
		return nil, fmt.Errorf("core: SolveVddTwoMode needs a Vdd-Hopping model, got %s", m.Kind)
	}
	cont, err := p.SolveContinuous(m.SMax, opts)
	if err != nil {
		return nil, err
	}
	speeds, err := cont.Speeds()
	if err != nil {
		return nil, err
	}
	profiles := make([]sched.Profile, p.G.N())
	for i, sStar := range speeds {
		w := p.G.Weight(i)
		d := w / sStar
		// Clamp below the slowest mode: running faster than necessary at the
		// bottom mode only shortens the task (still feasible).
		if sStar < m.SMin {
			profiles[i] = sched.ConstantProfile(w, m.SMin)
			continue
		}
		lo, hi, err := m.Bracket(sStar)
		if err != nil {
			return nil, err
		}
		if hi-lo < 1e-12*hi { // s* is (numerically) a mode
			profiles[i] = sched.ConstantProfile(w, hi)
			continue
		}
		// Time x at hi, d-x at lo with lo(d-x) + hi·x = w.
		x := (w - lo*d) / (hi - lo)
		profiles[i] = sched.Profile{
			{Speed: hi, Duration: x},
			{Speed: lo, Duration: d - x},
		}
	}
	s, err := sched.FromProfiles(p.G, profiles)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Model:    m,
		Schedule: s,
		Energy:   s.Energy,
		Stats:    Stats{Algorithm: "vdd-two-mode", Exact: false, BoundFactor: 1},
	}, nil
}

// VddDistinctSpeedStats reports, for a Vdd solution, how many tasks use 1,
// 2, or more distinct speeds — the structural property (at most two
// adjacent modes per task at optimality) that motivates the model.
func VddDistinctSpeedStats(s *Solution, tol float64) map[int]int {
	out := make(map[int]int)
	for _, prof := range s.Schedule.Profiles {
		out[prof.DistinctSpeeds(tol)]++
	}
	// Deterministic iteration for printing: callers can sort keys.
	keys := make([]int, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return out
}
