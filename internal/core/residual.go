package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/sched"
)

// Residual re-solving: when a schedule is already executing, completed tasks
// freeze at their actual finish times and the remaining tasks form a residual
// MinEnergy instance whose only new ingredient is a per-task release time —
// the latest frozen-predecessor finish. This file carries the shared residual
// machinery: the WarmStart seed every solver accepts, release-aware
// feasibility, and release-aware solution packaging. The per-solver
// retrofits live next to each solver (continuous, vdd, discrete,
// incremental).

// WarmStart seeds a solver with the previous solution of a closely related
// instance (typically: the same residual graph before the latest completion
// event deviated). Warm starts never change what a solver returns — exact
// solvers stay exact, approximations keep their bound — they only shrink the
// work: the interior point starts centering from the previous speed vector,
// branch-and-bound opens with the previous assignment as incumbent, the
// Pareto DP prunes against the previous energy, and the Vdd LP restricts
// each task to the modes bracketing its previous profile (falling back to
// the full program when the restriction's optimality certificate fails).
// Stale or infeasible warm data is detected and ignored.
type WarmStart struct {
	// Speeds is the previous constant speed per task (Continuous, Discrete,
	// Incremental solutions).
	Speeds []float64
	// Profiles is the previous per-task speed profile (Vdd-Hopping
	// solutions, whose tasks hop between modes). When set it takes
	// precedence over Speeds.
	Profiles []sched.Profile
}

// hasRelease reports whether any task has a positive release time.
func hasRelease(release []float64) bool {
	for _, r := range release {
		if r > 0 {
			return true
		}
	}
	return false
}

// checkRelease validates a release vector against the problem.
func (p *Problem) checkRelease(release []float64) error {
	if release == nil {
		return nil
	}
	if len(release) != p.G.N() {
		return fmt.Errorf("core: %d release times for %d tasks", len(release), p.G.N())
	}
	for i, r := range release {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("core: task %d has invalid release time %v", i, r)
		}
		if r >= p.Deadline {
			return fmt.Errorf("%w: task %d releases at %.9g ≥ deadline %.9g", ErrInfeasible, i, r, p.Deadline)
		}
	}
	return nil
}

// CheckFeasibleFrom verifies the residual instance admits a schedule: every
// task run at smax, started no earlier than its release, finishes by D.
func (p *Problem) CheckFeasibleFrom(smax float64, release []float64) error {
	if err := p.checkRelease(release); err != nil {
		return err
	}
	if release == nil {
		return p.CheckFeasible(smax)
	}
	if !(smax > 0) {
		return model.ErrBadSMax
	}
	durations := make([]float64, p.G.N())
	for i := range durations {
		if math.IsInf(smax, 1) {
			durations[i] = 0
		} else {
			durations[i] = p.G.Weight(i) / smax
		}
	}
	ms, err := p.G.MakespanFrom(durations, release)
	if err != nil {
		return err
	}
	if ms > p.Deadline*(1+1e-12) {
		return fmt.Errorf("%w: residual needs D ≥ %.9g, have %.9g", ErrInfeasible, ms, p.Deadline)
	}
	return nil
}

// solutionFromSpeedsAt packages constant speeds into a Solution whose
// schedule honors the release times (start/finish via AnalyzeFrom).
func (p *Problem) solutionFromSpeedsAt(m model.Model, speeds, release []float64, st Stats) (*Solution, error) {
	if !hasRelease(release) {
		return p.solutionFromSpeeds(m, speeds, st)
	}
	s, err := sched.FromSpeedsAt(p.G, speeds, release)
	if err != nil {
		return nil, err
	}
	return &Solution{Model: m, Schedule: s, Energy: s.Energy, Stats: st}, nil
}
