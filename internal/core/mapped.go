package core

import (
	"fmt"

	"repro/internal/graph"
)

// Out-of-core continuous solves over memory-mapped EGRF instances.
//
// The huge-instance tier streams the graph structure straight out of the
// mapping: a union-find over int32 parents plus int32 in/out-degree
// counters classifies every weakly-connected component, chain components
// get the Theorem 1 closed form (uniform speed W_c/D) without ever
// materializing tasks, and only the non-chain remainder is lifted into
// an in-memory Graph for the usual dispatcher. Peak RSS for an n-task
// instance that is mostly chains is ~12n bytes of classification state,
// far below the materialized Graph's footprint.

// MappedResult summarizes an out-of-core continuous solve. It carries no
// per-task schedule — for million-task instances that would defeat the
// point; chain components are fully described by their uniform speed.
type MappedResult struct {
	// Energy is the total optimal dynamic energy Σ wᵢ·sᵢ².
	Energy float64
	// Tasks and Edges echo the instance dimensions.
	Tasks, Edges int
	// Components counts weakly-connected components.
	Components int
	// StreamedChains counts components solved by the chain closed form
	// directly from the mapping, without materialization.
	StreamedChains int
	// MaterializedTasks counts tasks that had to be lifted into memory
	// for the numeric dispatcher (non-chain components).
	MaterializedTasks int
	// Newton sums interior-point iterations spent on materialized
	// components (0 when everything streamed).
	Newton int
}

// mappedComp accumulates per-component classification state, keyed by
// union-find root. A mostly-chain million-task instance touches one
// entry; a multi-family instance touches one per component.
type mappedComp struct {
	size, edges int
	weight      float64
	chainOK     bool // every member has indeg ≤ 1 and outdeg ≤ 1
}

// mappedScan classifies the mapped instance's components in one pass
// over edges plus one pass over tasks, using ~12 bytes per task.
func mappedScan(mg *graph.Mapped) (map[int32]*mappedComp, []int32, error) {
	n, m := mg.N(), mg.M()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	indeg := make([]int32, n)
	outdeg := make([]int32, n)
	for k := 0; k < m; k++ {
		u, v := mg.Edge(k)
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, nil, fmt.Errorf("core: mapped instance has invalid edge (%d,%d)", u, v)
		}
		outdeg[u]++
		indeg[v]++
		ru, rv := find(int32(u)), find(int32(v))
		if ru != rv {
			parent[ru] = rv
		}
	}
	comps := make(map[int32]*mappedComp)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		c := comps[r]
		if c == nil {
			c = &mappedComp{chainOK: true}
			comps[r] = c
		}
		c.size++
		c.weight += mg.Weight(i)
		if indeg[i] > 1 || outdeg[i] > 1 {
			c.chainOK = false
		}
	}
	for k := 0; k < m; k++ {
		u, _ := mg.Edge(k)
		comps[find(int32(u))].edges++
	}
	return comps, parent, nil
}

// isStreamableChain reports whether a component is a directed path (or a
// singleton): with in/out-degrees capped at 1, exactly size−1 edges
// rules out both branching and cycles, so the chain closed form applies.
func (c *mappedComp) isStreamableChain() bool {
	return c.chainOK && c.edges == c.size-1
}

// mappedMaterialize lifts every non-chain component into an in-memory
// Graph (keyed by union-find root), leaving streamable chains in the
// mapping. parent must be the (path-compressed) forest from mappedScan.
func mappedMaterialize(mg *graph.Mapped, comps map[int32]*mappedComp, parent []int32) (map[int32]*graph.Graph, error) {
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	n := mg.N()
	local := make([]int32, n)
	graphs := make(map[int32]*graph.Graph)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if comps[r].isStreamableChain() {
			local[i] = -1
			continue
		}
		g := graphs[r]
		if g == nil {
			g = graph.New()
			graphs[r] = g
		}
		local[i] = int32(g.AddTask("", mg.Weight(i)))
	}
	for k := 0; k < mg.M(); k++ {
		u, v := mg.Edge(k)
		if local[u] < 0 {
			continue
		}
		g := graphs[find(int32(u))]
		if err := g.AddEdge(int(local[u]), int(local[v])); err != nil {
			return nil, err
		}
	}
	return graphs, nil
}

// SolveMappedContinuous solves MinEnergy under the Continuous model on a
// memory-mapped instance, the deadline applying per component as in
// SolvePlanned. Chain components use the closed form s = W_c/D streamed
// from the mapping; everything else is materialized and dispatched
// through SolveContinuous.
func SolveMappedContinuous(mg *graph.Mapped, deadline, smax float64, opts ContinuousOptions) (*MappedResult, error) {
	if !(deadline > 0) {
		return nil, fmt.Errorf("core: deadline must be positive, got %v", deadline)
	}
	if !(smax > 0) {
		return nil, fmt.Errorf("core: smax must be positive, got %v", smax)
	}
	comps, parent, err := mappedScan(mg)
	if err != nil {
		return nil, err
	}
	res := &MappedResult{Tasks: mg.N(), Edges: mg.M(), Components: len(comps)}
	needMaterialize := false
	for _, c := range comps {
		if c.isStreamableChain() {
			s := c.weight / deadline
			if s > smax*(1+1e-12) {
				return nil, fmt.Errorf("%w: chain component needs speed %.9g > smax %.9g", ErrInfeasible, s, smax)
			}
			res.Energy += c.weight * s * s
			res.StreamedChains++
		} else {
			needMaterialize = true
		}
	}
	if !needMaterialize {
		return res, nil
	}
	graphs, err := mappedMaterialize(mg, comps, parent)
	if err != nil {
		return nil, err
	}
	for _, g := range graphs {
		p, err := NewProblem(g, deadline)
		if err != nil {
			return nil, err
		}
		sol, err := p.SolveContinuous(smax, opts)
		if err != nil {
			return nil, err
		}
		res.Energy += sol.Energy
		res.Newton += sol.Stats.Newton
		res.MaterializedTasks += g.N()
	}
	return res, nil
}

// MappedMinimalDeadline returns the smallest feasible deadline at smax
// for a mapped instance: the max over components of critical-path weight
// divided by smax, with chain components streamed (W_c/smax) and only
// non-chain components materialized.
func MappedMinimalDeadline(mg *graph.Mapped, smax float64) (float64, error) {
	if !(smax > 0) {
		return 0, fmt.Errorf("core: smax must be positive, got %v", smax)
	}
	comps, parent, err := mappedScan(mg)
	if err != nil {
		return 0, err
	}
	dmin := 0.0
	needMaterialize := false
	for _, c := range comps {
		if c.isStreamableChain() {
			if d := c.weight / smax; d > dmin {
				dmin = d
			}
		} else {
			needMaterialize = true
		}
	}
	if !needMaterialize {
		return dmin, nil
	}
	graphs, err := mappedMaterialize(mg, comps, parent)
	if err != nil {
		return 0, err
	}
	for _, g := range graphs {
		d, err := g.MinimalDeadline(smax)
		if err != nil {
			return 0, err
		}
		if d > dmin {
			dmin = d
		}
	}
	return dmin, nil
}
