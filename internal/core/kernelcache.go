package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/convex"
	"repro/internal/graph"
	"repro/internal/linalg"
)

// The continuous geometric program splits cleanly along the
// structure/value axis: the constraint matrix A over x = (t, d) has only
// ±1 entries whose placement is fixed by the (transitively reduced)
// precedence structure and by whether a lower speed bound adds the
// duration-ceiling rows — the weights, deadline, and release times reach
// the solver exclusively through the right-hand side b, the objective,
// and the start point. compileContinuousKernel captures everything on the
// structure side, so requests that differ only in values reuse the
// transitive reduction, the CSR assembly, the fill-reducing ordering, and
// the symbolic factorization.

// continuousKernel is the compiled structure-determined state of one
// continuous solve: the post-reduction edge list (which fixes the
// constraint row order b must follow), the CSR constraint matrix, and
// the compiled sparse barrier program.
type continuousKernel struct {
	edges       [][2]int
	rowsDropped int
	hasHi       bool
	rows        int
	a           *linalg.CSR
	prog        *convex.SparseProgram
}

// compileContinuousKernel assembles the constraint structure for the
// execution graph g. hasHi adds the dᵢ ≤ wᵢ/smin rows (their values live
// in b; only their existence is structural). dense skips the sparse
// program compile — the dense oracle path factors A.Dense() itself.
func compileContinuousKernel(g *graph.Graph, hasHi bool, opts ContinuousOptions, dense bool) *continuousKernel {
	n := g.N()
	// Dense DAGs (m > 2n) usually carry transitively implied precedences:
	// u→v alongside u→w→v. Every duration is strictly positive, so the
	// u→v row is strictly implied by the u→w and w→v rows and the
	// transitive reduction defines the same feasible set with fewer
	// barrier terms. Sparse graphs skip the O(n·m) reduction cost.
	edges := g.Edges()
	rowsDropped := 0
	if len(edges) > 2*n {
		if reduced, rerr := g.TransitiveReduction(); rerr == nil {
			redEdges := reduced.Edges()
			rowsDropped = len(edges) - len(redEdges)
			edges = redEdges
		}
	}
	rows := len(edges) + 3*n
	if hasHi {
		rows += n
	}
	ab := linalg.NewCSRBuilder(2 * n)
	for _, e := range edges { // t_u + d_v - t_v <= 0
		ab.Set(e[0], 1)
		ab.Set(n+e[1], 1)
		ab.Set(e[1], -1)
		ab.EndRow()
	}
	for i := 0; i < n; i++ { // d_i - t_i <= -r_i
		ab.Set(n+i, 1)
		ab.Set(i, -1)
		ab.EndRow()
	}
	for i := 0; i < n; i++ { // t_i <= 1
		ab.Set(i, 1)
		ab.EndRow()
	}
	for i := 0; i < n; i++ { // -d_i <= -w_i/sCap
		ab.Set(n+i, -1)
		ab.EndRow()
	}
	if hasHi {
		for i := 0; i < n; i++ { // d_i <= w_i/smin
			ab.Set(n+i, 1)
			ab.EndRow()
		}
	}
	k := &continuousKernel{edges: edges, rowsDropped: rowsDropped, hasHi: hasHi, rows: rows, a: ab.Build()}
	if !dense {
		k.prog = convex.CompileSparse(k.a, 2*n, convex.Options{Ordering: opts.Ordering, Workers: opts.Workers})
	}
	return k
}

// kernelKey identifies one compiled kernel: the graph's structural
// fingerprint plus every option that changes the compiled artifact —
// the hi-row block, the worker count baked into the sparse program, and
// the ordering selection.
type kernelKey struct {
	fp       [32]byte
	hasHi    bool
	workers  int
	ordering convex.Ordering
}

// KernelCache is a bounded, mutex-guarded LRU of compiled continuous
// kernels keyed by graph structure. Entries are immutable and safe to
// share: the sparse program inside pools its own per-solve workspaces,
// so N concurrent solves can hit one entry. A value-miss/structure-hit
// request skips the transitive reduction, CSR assembly, ordering, and
// symbolic factorization entirely.
type KernelCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[kernelKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type kernelEntry struct {
	key kernelKey
	ker *continuousKernel
}

// NewKernelCache returns a cache holding up to cap compiled kernels;
// cap < 1 is clamped to 1.
func NewKernelCache(cap int) *KernelCache {
	if cap < 1 {
		cap = 1
	}
	return &KernelCache{
		cap:     cap,
		order:   list.New(),
		entries: make(map[kernelKey]*list.Element),
	}
}

// kernel returns the compiled kernel for g under opts, compiling and
// inserting on miss. Concurrent misses on one key may compile twice; the
// first insertion wins and the duplicate is dropped — acceptable, since
// entries are interchangeable and the race is rare.
func (c *KernelCache) kernel(g *graph.Graph, hasHi bool, opts ContinuousOptions) *continuousKernel {
	key := kernelKey{fp: g.StructuralFingerprint(), hasHi: hasHi, workers: opts.Workers, ordering: opts.Ordering}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		ker := el.Value.(*kernelEntry).ker
		c.mu.Unlock()
		c.hits.Add(1)
		return ker
	}
	c.mu.Unlock()
	c.misses.Add(1)

	ker := compileContinuousKernel(g, hasHi, opts, false)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*kernelEntry).ker
	}
	c.entries[key] = c.order.PushFront(&kernelEntry{key: key, ker: ker})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*kernelEntry).key)
	}
	return ker
}

// Hits returns the lookup-hit count.
func (c *KernelCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the lookup-miss count.
func (c *KernelCache) Misses() uint64 { return c.misses.Load() }

// Len returns the number of cached kernels.
func (c *KernelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
