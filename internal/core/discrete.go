package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/model"
)

// Theorem 4: MinEnergy(G, D) is NP-complete under the Discrete (and
// Incremental) models. This file provides two exact solvers — a
// branch-and-bound over mode assignments for arbitrary execution graphs,
// and a Pareto-frontier dynamic program that is exact and fast on
// series-parallel shapes — plus the polynomial heuristics the experiments
// compare against.

// DiscreteOptions tunes the exact solvers.
type DiscreteOptions struct {
	// MaxNodes bounds branch-and-bound nodes (default 4e6).
	MaxNodes int
	// MaxFrontier bounds the Pareto DP frontier size (default 500000).
	MaxFrontier int
	// Release gives each task an earliest permitted start (residual
	// re-solves). Supported by branch-and-bound and the greedy heuristic;
	// the SP Pareto DP rejects it (series/parallel composition has no
	// notion of per-task absolute time).
	Release []float64
	// Warm seeds the exact solvers from a previous assignment without
	// changing their result: branch-and-bound opens with it as incumbent
	// (when still feasible), and the Pareto DP prunes frontier entries
	// that already cost more than the previous energy — both are sound
	// because the previous assignment's energy upper-bounds the optimum
	// whenever it remains feasible.
	Warm *WarmStart
}

func (o DiscreteOptions) maxNodes() int {
	if o.MaxNodes == 0 {
		return 4_000_000
	}
	return o.MaxNodes
}

func (o DiscreteOptions) maxFrontier() int {
	if o.MaxFrontier == 0 {
		return 500_000
	}
	return o.MaxFrontier
}

// ErrSearchLimit is returned when an exact solver exhausts its node or
// frontier budget before proving optimality.
var ErrSearchLimit = errors.New("core: exact search exceeded its budget (instance too large — Theorem 4 in action)")

func discreteKind(m model.Model) error {
	if m.Kind != model.Discrete && m.Kind != model.Incremental {
		return fmt.Errorf("core: need a Discrete or Incremental model, got %s", m.Kind)
	}
	return nil
}

// SolveDiscreteBB computes the exact optimum by depth-first branch-and-bound
// over per-task modes. Tasks are branched in decreasing weight order; modes
// are tried slowest-first; subtrees are pruned when (a) even running every
// unassigned task at top speed misses the deadline, or (b) the energy of the
// assigned prefix plus every unassigned task at the slowest mode already
// meets the incumbent. The greedy heuristic provides the initial incumbent.
func (p *Problem) SolveDiscreteBB(m model.Model, opts DiscreteOptions) (*Solution, error) {
	if err := discreteKind(m); err != nil {
		return nil, err
	}
	if err := p.CheckFeasibleFrom(m.SMax, opts.Release); err != nil {
		return nil, err
	}
	release := opts.Release
	if release != nil && !hasRelease(release) {
		release = nil
	}
	n := p.G.N()
	modes := m.Modes
	nm := len(modes)
	top := modes[nm-1]

	// Incumbent: the previous assignment when warm data is present and
	// still feasible (its energy upper-bounds the optimum, and it usually
	// sits far closer than the greedy's), otherwise the greedy heuristic
	// (always succeeds when feasible).
	bestEnergy := math.Inf(1)
	bestSpeeds := make([]float64, n)
	if ws := warmModeSpeeds(p, m, opts.Warm, release); ws != nil {
		copy(bestSpeeds, ws)
		bestEnergy = 0
		for i := 0; i < n; i++ {
			bestEnergy += model.TaskEnergy(p.G.Weight(i), ws[i])
		}
	} else if greedy, err := p.solveDiscreteGreedy(m, release); err == nil {
		gs, _ := greedy.Speeds()
		copy(bestSpeeds, gs)
		bestEnergy = greedy.Energy
	} else {
		for i := range bestSpeeds {
			bestSpeeds[i] = top
		}
		bestEnergy = 0
		for i := 0; i < n; i++ {
			bestEnergy += model.TaskEnergy(p.G.Weight(i), top)
		}
	}

	// Branch order: heaviest tasks first (largest energy leverage).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		if p.G.Weight(perm[a]) != p.G.Weight(perm[b]) {
			return p.G.Weight(perm[a]) > p.G.Weight(perm[b])
		}
		return perm[a] < perm[b]
	})

	durations := make([]float64, n)
	for i := 0; i < n; i++ {
		durations[i] = p.G.Weight(i) / top // unassigned: fastest
	}
	speeds := make([]float64, n)
	// Suffix minimum-energy bound: every unassigned task at the slowest mode.
	suffixMin := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffixMin[k] = suffixMin[k+1] + model.TaskEnergy(p.G.Weight(perm[k]), modes[0])
	}

	nodes := 0
	limit := opts.maxNodes()
	var limitHit bool
	const eps = 1e-12

	var dfs func(k int, prefixEnergy float64)
	dfs = func(k int, prefixEnergy float64) {
		if limitHit {
			return
		}
		nodes++
		if nodes > limit {
			limitHit = true
			return
		}
		if k == n {
			if prefixEnergy < bestEnergy-eps {
				bestEnergy = prefixEnergy
				copy(bestSpeeds, speeds)
			}
			return
		}
		t := perm[k]
		w := p.G.Weight(t)
		for j := 0; j < nm; j++ {
			e := prefixEnergy + model.TaskEnergy(w, modes[j])
			if e+suffixMin[k+1] >= bestEnergy-eps {
				break // faster modes only cost more
			}
			durations[t] = w / modes[j]
			if ms, _ := p.G.MakespanFrom(durations, release); ms <= p.Deadline*(1+1e-12) {
				speeds[t] = modes[j]
				dfs(k+1, e)
			}
		}
		durations[t] = w / top // restore the optimistic duration
	}
	dfs(0, 0)

	st := Stats{Algorithm: "discrete-bb", Nodes: nodes, Exact: !limitHit, BoundFactor: 1}
	if limitHit {
		// Return the incumbent, flagged as possibly suboptimal.
		st.BoundFactor = math.Inf(1)
	}
	if math.IsInf(bestEnergy, 1) {
		return nil, ErrInfeasible
	}
	sol, err := p.solutionFromSpeedsAt(m, bestSpeeds, release, st)
	if err != nil {
		return nil, err
	}
	if limitHit {
		return sol, ErrSearchLimit
	}
	return sol, nil
}

// warmModeSpeeds validates a warm assignment for the discrete solvers:
// every previous speed snaps to an admissible mode and the assignment still
// meets the deadline under the release times. Returns the snapped speeds,
// or nil when the warm data is absent, stale, or infeasible.
func warmModeSpeeds(p *Problem, m model.Model, warm *WarmStart, release []float64) []float64 {
	n := p.G.N()
	if warm == nil || len(warm.Speeds) != n {
		return nil
	}
	speeds := make([]float64, n)
	durations := make([]float64, n)
	for i, s := range warm.Speeds {
		snapped := 0.0
		for _, mode := range m.Modes {
			if math.Abs(s-mode) <= 1e-9*math.Max(1, mode) {
				snapped = mode
				break
			}
		}
		if snapped == 0 {
			return nil // previous speed is not on this mode ladder
		}
		speeds[i] = snapped
		durations[i] = p.G.Weight(i) / snapped
	}
	ms, err := p.G.MakespanFrom(durations, release)
	if err != nil || ms > p.Deadline*(1+1e-12) {
		return nil
	}
	return speeds
}

// SolveDiscreteGreedy is the classic slack-reclamation heuristic: start
// every task at the top mode, then repeatedly take the single mode
// downgrade with the largest energy saving that keeps the deadline, until
// no downgrade fits. Polynomial: O(n²·m·(n+m)) worst case.
func (p *Problem) SolveDiscreteGreedy(m model.Model) (*Solution, error) {
	return p.solveDiscreteGreedy(m, nil)
}

// SolveDiscreteGreedyOpts is SolveDiscreteGreedy with residual release
// times (opts.Release); the other exact-solver options are ignored.
func (p *Problem) SolveDiscreteGreedyOpts(m model.Model, opts DiscreteOptions) (*Solution, error) {
	release := opts.Release
	if release != nil && !hasRelease(release) {
		release = nil
	}
	return p.solveDiscreteGreedy(m, release)
}

func (p *Problem) solveDiscreteGreedy(m model.Model, release []float64) (*Solution, error) {
	if err := discreteKind(m); err != nil {
		return nil, err
	}
	if err := p.CheckFeasibleFrom(m.SMax, release); err != nil {
		return nil, err
	}
	n := p.G.N()
	modes := m.Modes
	nm := len(modes)
	idx := make([]int, n) // current mode index per task
	durations := make([]float64, n)
	for i := 0; i < n; i++ {
		idx[i] = nm - 1
		durations[i] = p.G.Weight(i) / modes[nm-1]
	}
	for {
		bestTask, bestGain := -1, 0.0
		for i := 0; i < n; i++ {
			if idx[i] == 0 {
				continue
			}
			w := p.G.Weight(i)
			oldD := durations[i]
			durations[i] = w / modes[idx[i]-1]
			ms, err := p.G.MakespanFrom(durations, release)
			durations[i] = oldD
			if err != nil {
				return nil, err
			}
			if ms > p.Deadline*(1+1e-12) {
				continue
			}
			gain := model.TaskEnergy(w, modes[idx[i]]) - model.TaskEnergy(w, modes[idx[i]-1])
			if gain > bestGain {
				bestGain, bestTask = gain, i
			}
		}
		if bestTask < 0 {
			break
		}
		idx[bestTask]--
		durations[bestTask] = p.G.Weight(bestTask) / modes[idx[bestTask]]
	}
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		speeds[i] = modes[idx[i]]
	}
	return p.solutionFromSpeedsAt(m, speeds, release, Stats{Algorithm: "discrete-greedy", Exact: false, BoundFactor: math.Inf(1)})
}

// SolveDiscreteRoundUp is the Proposition 1 construction: solve the
// Continuous relaxation with speeds in [s₁, sₘ], then round every speed up
// to the next admissible mode. Rounding up only shortens tasks, so the
// result stays feasible; the energy is within (1+α/s₁)² of the continuous
// optimum (α = largest gap between consecutive modes), hence within the
// same factor of the discrete optimum.
func (p *Problem) SolveDiscreteRoundUp(m model.Model, opts ContinuousOptions) (*Solution, error) {
	if err := discreteKind(m); err != nil {
		return nil, err
	}
	bounded := opts
	bounded.SMin = m.SMin
	cont, err := p.SolveContinuousNumeric(m.SMax, bounded)
	if err != nil {
		return nil, err
	}
	contSpeeds, err := cont.Speeds()
	if err != nil {
		return nil, err
	}
	speeds := make([]float64, len(contSpeeds))
	for i, s := range contSpeeds {
		up, err := m.RoundUp(s)
		if err != nil {
			// Roundoff above the top mode: the top mode is still ≥ the true
			// continuous optimum, so it remains feasible.
			up = m.SMax
		}
		speeds[i] = up
	}
	alpha := m.MaxGap()
	bound := (1 + alpha/m.SMin) * (1 + alpha/m.SMin)
	return p.solutionFromSpeedsAt(m, speeds, opts.Release, Stats{Algorithm: "discrete-round-up", Exact: false, BoundFactor: bound})
}

// --- Exact Pareto dynamic program on series-parallel execution graphs ---

// paretoEntry is one nondominated (makespan, energy) point together with the
// provenance needed to rebuild the mode assignment.
type paretoEntry struct {
	T, E   float64
	mode   int // leaf: mode index; internal: -1
	li, ri int // internal: chosen entry in left/right child frontier
}

type dpNode struct {
	task        int // leaf task, or -1
	series      bool
	left, right *dpNode
	frontier    []paretoEntry
}

// buildDPTree converts an SPExpr into a binary DP tree (n-ary compositions
// fold left).
func buildDPTree(e *graph.SPExpr) *dpNode {
	if e.Kind == graph.SPTask {
		return &dpNode{task: e.Task}
	}
	cur := buildDPTree(e.Children[0])
	for _, c := range e.Children[1:] {
		cur = &dpNode{
			task:   -1,
			series: e.Kind == graph.SPSeries,
			left:   cur,
			right:  buildDPTree(c),
		}
	}
	return cur
}

// prunePareto sorts entries by (T asc, E asc) and keeps the strictly
// E-decreasing staircase.
func prunePareto(entries []paretoEntry) []paretoEntry {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].T != entries[j].T {
			return entries[i].T < entries[j].T
		}
		return entries[i].E < entries[j].E
	})
	out := entries[:0]
	bestE := math.Inf(1)
	for _, e := range entries {
		if e.E < bestE-1e-15 {
			out = append(out, e)
			bestE = e.E
		}
	}
	return out
}

// SolveDiscreteSP computes the exact Discrete/Incremental optimum on a
// series-parallel execution graph by composing Pareto frontiers of
// (makespan, energy) pairs: a leaf contributes one point per mode; series
// composition adds coordinates; parallel composition takes the max of
// makespans and adds energies. Exponential in the worst case (Theorem 4
// still applies) but typically far faster than branch-and-bound because
// domination pruning collapses the state space.
func (p *Problem) SolveDiscreteSP(m model.Model, e *graph.SPExpr, opts DiscreteOptions) (*Solution, error) {
	if err := discreteKind(m); err != nil {
		return nil, err
	}
	if opts.Release != nil && hasRelease(opts.Release) {
		return nil, fmt.Errorf("core: the SP Pareto DP does not support release times (route residual components to branch-and-bound)")
	}
	if e.Size() != p.G.N() {
		return nil, fmt.Errorf("core: SP expression covers %d of %d tasks", e.Size(), p.G.N())
	}
	// Warm energy bound: a still-feasible previous assignment upper-bounds
	// the optimum, so any frontier entry that alone costs more than it can
	// never extend to an optimal solution (sibling energies are
	// non-negative) and is pruned.
	eBound := math.Inf(1)
	if ws := warmModeSpeeds(p, m, opts.Warm, nil); ws != nil {
		eBound = 0
		for i := 0; i < p.G.N(); i++ {
			eBound += model.TaskEnergy(p.G.Weight(i), ws[i])
		}
		eBound = eBound*(1+1e-9) + 1e-12
	}
	root := buildDPTree(e)
	peak := 0
	var compute func(nd *dpNode) error
	compute = func(nd *dpNode) error {
		if nd.task >= 0 {
			w := p.G.Weight(nd.task)
			for j, s := range m.Modes {
				T := w / s
				if T <= p.Deadline*(1+1e-12) && model.TaskEnergy(w, s) <= eBound {
					nd.frontier = append(nd.frontier, paretoEntry{T: T, E: model.TaskEnergy(w, s), mode: j, li: -1, ri: -1})
				}
			}
			nd.frontier = prunePareto(nd.frontier)
			if len(nd.frontier) == 0 {
				return fmt.Errorf("%w: task %d cannot meet the deadline alone", ErrInfeasible, nd.task)
			}
			return nil
		}
		if err := compute(nd.left); err != nil {
			return err
		}
		if err := compute(nd.right); err != nil {
			return err
		}
		merged := make([]paretoEntry, 0, len(nd.left.frontier)+len(nd.right.frontier))
		for li, a := range nd.left.frontier {
			for ri, b := range nd.right.frontier {
				var T float64
				if nd.series {
					T = a.T + b.T
				} else {
					T = math.Max(a.T, b.T)
				}
				if T > p.Deadline*(1+1e-12) || a.E+b.E > eBound {
					continue
				}
				merged = append(merged, paretoEntry{T: T, E: a.E + b.E, mode: -1, li: li, ri: ri})
			}
		}
		nd.frontier = prunePareto(merged)
		if len(nd.frontier) > peak {
			peak = len(nd.frontier)
		}
		if len(nd.frontier) > opts.maxFrontier() {
			return ErrSearchLimit
		}
		if len(nd.frontier) == 0 {
			return ErrInfeasible
		}
		return nil
	}
	if err := compute(root); err != nil {
		return nil, err
	}
	// The frontier is E-decreasing in T; the optimum is the last entry.
	bestIdx := len(root.frontier) - 1

	speeds := make([]float64, p.G.N())
	var rebuild func(nd *dpNode, idx int)
	rebuild = func(nd *dpNode, idx int) {
		ent := nd.frontier[idx]
		if nd.task >= 0 {
			speeds[nd.task] = m.Modes[ent.mode]
			return
		}
		rebuild(nd.left, ent.li)
		rebuild(nd.right, ent.ri)
	}
	rebuild(root, bestIdx)
	return p.solutionFromSpeeds(m, speeds, Stats{
		Algorithm:    "discrete-sp-pareto",
		FrontierPeak: peak,
		Exact:        true,
		BoundFactor:  1,
	})
}
