package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
)

func TestEnergyDeadlineCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.GnpDAG(rng, 12, 0.25, graph.UniformWeights(1, 5))
	m, _ := platform.ListSchedule(g, 3)
	eg, _ := platform.BuildExecutionGraph(g, m)
	points, err := EnergyDeadlineCurve(eg, 2, []float64{1.1, 1.5, 2, 3, 5}, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Energy > points[i-1].Energy*(1+1e-9) {
			t.Fatalf("energy not monotone in deadline: %+v", points)
		}
		if points[i].Deadline <= points[i-1].Deadline {
			t.Fatalf("deadlines not increasing: %+v", points)
		}
	}
	if _, err := EnergyDeadlineCurve(eg, 2, []float64{0.9}, ContinuousOptions{}); err == nil {
		t.Fatal("accepted factor below 1")
	}
}

// Homogeneity: with smax = ∞, E(λD) = E(D)/λ² exactly — the structural
// identity behind every closed form in the paper.
func TestHomogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4; trial++ {
		g := graph.GnpDAG(rng, 8+rng.Intn(8), 0.3, graph.UniformWeights(1, 4))
		cpw, _ := g.CriticalPathWeight()
		dev, err := HomogeneityCheck(g, cpw, []float64{0.5, 2, 4}, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if dev > 1e-4 {
			t.Fatalf("trial %d: homogeneity deviation %v", trial, dev)
		}
	}
	if _, err := HomogeneityCheck(graph.Chain(rng, 3, graph.ConstantWeights(1)), 3, []float64{-1}, ContinuousOptions{}); err == nil {
		t.Fatal("accepted λ ≤ 0")
	}
}

func TestMarginalEnergyRateNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Chain(rng, 5, graph.UniformWeights(1, 3))
	D := g.TotalWeight() / 1.2
	rate, err := MarginalEnergyRate(g, 2, D, D*0.01, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rate >= 0 {
		t.Fatalf("more time should never cost energy: dE/dD = %v", rate)
	}
	// For a chain, E = W³/D² so dE/dD = −2W³/D³: check against the formula.
	w := g.TotalWeight()
	want := -2 * math.Pow(w, 3) / math.Pow(D, 3)
	if math.Abs(rate-want) > 1e-2*math.Abs(want) {
		t.Fatalf("dE/dD = %v, analytic %v", rate, want)
	}
	if _, err := MarginalEnergyRate(g, 2, D, 0, ContinuousOptions{}); err == nil {
		t.Fatal("accepted zero step")
	}
}

// The curve flattens as the deadline loosens: each extra second buys less.
func TestCurveConvexity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.GnpDAG(rng, 10, 0.25, graph.UniformWeights(1, 5))
	points, err := EnergyDeadlineCurve(g, 2, []float64{1.5, 2, 2.5, 3, 3.5}, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(points); i++ {
		drop1 := points[i-2].Energy - points[i-1].Energy
		drop2 := points[i-1].Energy - points[i].Energy
		if drop2 > drop1*(1+1e-6) {
			t.Fatalf("curve not convex: drops %v then %v", drop1, drop2)
		}
	}
}
