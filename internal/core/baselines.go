package core

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Baselines: what the energy bill looks like *without* per-task speed
// reclaiming. The experiments report every model's energy relative to these.

// SolveAllMax runs every task at the model's top speed — the "no energy
// management" schedule a makespan-oriented runtime would produce. It is the
// energy ceiling: every reclaiming strategy must do at least as well.
func (p *Problem) SolveAllMax(m model.Model) (*Solution, error) {
	if err := p.CheckFeasible(m.SMax); err != nil {
		return nil, err
	}
	if math.IsInf(m.SMax, 1) {
		return nil, fmt.Errorf("core: all-max baseline undefined for unbounded smax")
	}
	speeds := make([]float64, p.G.N())
	for i := range speeds {
		speeds[i] = m.SMax
	}
	return p.solutionFromSpeeds(m, speeds, Stats{Algorithm: "baseline-all-max", Exact: false, BoundFactor: math.Inf(1)})
}

// SolveUniform runs every task at one common speed, the slowest that meets
// the deadline: s = (critical-path weight)/D, rounded up to an admissible
// speed for discrete kinds. This is "global" slack reclaiming — the best a
// single chip-wide DVFS knob can do, against which the paper's per-task
// speeds show their advantage.
func (p *Problem) SolveUniform(m model.Model) (*Solution, error) {
	cpw, err := p.G.CriticalPathWeight()
	if err != nil {
		return nil, err
	}
	need := cpw / p.Deadline
	var s float64
	switch m.Kind {
	case model.Continuous:
		if need > m.SMax*(1+1e-12) {
			return nil, fmt.Errorf("%w: uniform speed %.9g > smax %.9g", ErrInfeasible, need, m.SMax)
		}
		s = math.Min(need, m.SMax)
	default:
		up, err := m.RoundUp(math.Max(need, m.SMin))
		if err != nil {
			return nil, fmt.Errorf("%w: uniform speed %.9g above top mode %.9g", ErrInfeasible, need, m.SMax)
		}
		s = up
	}
	speeds := make([]float64, p.G.N())
	for i := range speeds {
		speeds[i] = s
	}
	return p.solutionFromSpeeds(m, speeds, Stats{Algorithm: "baseline-uniform", Exact: false, BoundFactor: math.Inf(1)})
}
