package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/model"
)

// exhaustiveDiscrete enumerates every mode assignment — the ground truth for
// tiny instances (mᶰ states).
func exhaustiveDiscrete(p *Problem, modes []float64) (float64, bool) {
	n := p.G.N()
	idx := make([]int, n)
	durations := make([]float64, n)
	best := math.Inf(1)
	found := false
	for {
		for i := 0; i < n; i++ {
			durations[i] = p.G.Weight(i) / modes[idx[i]]
		}
		if ms, err := p.G.Makespan(durations); err == nil && ms <= p.Deadline*(1+1e-12) {
			e := 0.0
			for i := 0; i < n; i++ {
				e += model.TaskEnergy(p.G.Weight(i), modes[idx[i]])
			}
			if e < best {
				best = e
				found = true
			}
		}
		// Next assignment (odometer).
		k := 0
		for ; k < n; k++ {
			idx[k]++
			if idx[k] < len(modes) {
				break
			}
			idx[k] = 0
		}
		if k == n {
			break
		}
	}
	return best, found
}

func TestDiscreteBBMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	modes := []float64{0.7, 1.2, 2}
	dm, _ := model.NewDiscrete(modes)
	for trial := 0; trial < 10; trial++ {
		eg := randomExecGraph(t, rng, 3+rng.Intn(5), 2)
		dmin, _ := eg.MinimalDeadline(2)
		D := dmin * (1.1 + rng.Float64())
		p, _ := NewProblem(eg, D)
		want, feasible := exhaustiveDiscrete(p, modes)
		sol, err := p.SolveDiscreteBB(dm, DiscreteOptions{})
		if !feasible {
			if err == nil {
				t.Fatalf("trial %d: BB found a solution where none exists", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if relDiff(sol.Energy, want) > 1e-9 {
			t.Fatalf("trial %d: BB %v vs exhaustive %v", trial, sol.Energy, want)
		}
		if !sol.Stats.Exact {
			t.Fatalf("trial %d: solution not flagged exact", trial)
		}
		if err := p.Verify(sol, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDiscreteBBNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	eg := randomExecGraph(t, rng, 14, 3)
	modes := []float64{0.5, 0.9, 1.4, 2}
	dm, _ := model.NewDiscrete(modes)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*1.5)
	sol, err := p.SolveDiscreteBB(dm, DiscreteOptions{MaxNodes: 5})
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("expected ErrSearchLimit, got %v", err)
	}
	// Even at the limit the incumbent is feasible.
	if sol == nil {
		t.Fatal("no incumbent returned at the node limit")
	}
	if verr := p.Verify(sol, 1e-6); verr != nil {
		t.Fatalf("incumbent infeasible: %v", verr)
	}
}

func TestDiscreteGreedyFeasibleAndAboveOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	modes := []float64{0.6, 1, 1.6, 2.2}
	dm, _ := model.NewDiscrete(modes)
	for trial := 0; trial < 8; trial++ {
		eg := randomExecGraph(t, rng, 4+rng.Intn(5), 2)
		dmin, _ := eg.MinimalDeadline(modes[len(modes)-1])
		D := dmin * (1.1 + 2*rng.Float64())
		p, _ := NewProblem(eg, D)
		greedy, err := p.SolveDiscreteGreedy(dm)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(greedy, 1e-6); err != nil {
			t.Fatalf("greedy infeasible: %v", err)
		}
		exact, err := p.SolveDiscreteBB(dm, DiscreteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Energy < exact.Energy*(1-1e-9) {
			t.Fatalf("greedy %v beats the optimum %v", greedy.Energy, exact.Energy)
		}
	}
}

func TestDiscreteRoundUpBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	modes := []float64{0.8, 1.3, 2}
	dm, _ := model.NewDiscrete(modes)
	for trial := 0; trial < 6; trial++ {
		eg := randomExecGraph(t, rng, 6+rng.Intn(5), 2)
		dmin, _ := eg.MinimalDeadline(2)
		D := dmin * (1.2 + rng.Float64()*2)
		p, _ := NewProblem(eg, D)
		ru, err := p.SolveDiscreteRoundUp(dm, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(ru, 1e-6); err != nil {
			t.Fatalf("round-up infeasible: %v", err)
		}
		// The a-priori factor vs the speed-bounded continuous optimum.
		cont, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: modes[0]})
		if err != nil {
			t.Fatal(err)
		}
		if ru.Energy > cont.Energy*ru.Stats.BoundFactor*(1+1e-6) {
			t.Fatalf("trial %d: round-up %v exceeds bound %v × %v", trial, ru.Energy, ru.Stats.BoundFactor, cont.Energy)
		}
		// And it can never beat the continuous relaxation.
		if ru.Energy < cont.Energy*(1-1e-6) {
			t.Fatalf("round-up %v below continuous bound %v", ru.Energy, cont.Energy)
		}
	}
}

func TestDiscreteSPMatchesBB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	modes := []float64{0.7, 1.1, 1.9}
	dm, _ := model.NewDiscrete(modes)
	for trial := 0; trial < 10; trial++ {
		g, e := graph.RandomSP(rng, 2+rng.Intn(8), graph.UniformWeights(1, 4))
		dmin, _ := g.MinimalDeadline(modes[len(modes)-1])
		D := dmin * (1.1 + rng.Float64())
		p, _ := NewProblem(g, D)
		sp, err := p.SolveDiscreteSP(dm, e, DiscreteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bb, err := p.SolveDiscreteBB(dm, DiscreteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(sp.Energy, bb.Energy) > 1e-9 {
			t.Fatalf("trial %d: SP-DP %v vs BB %v", trial, sp.Energy, bb.Energy)
		}
		if err := p.Verify(sp, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sp.Stats.FrontierPeak == 0 && g.N() > 1 {
			t.Fatal("frontier peak not recorded")
		}
	}
}

func TestDiscreteSPInfeasible(t *testing.T) {
	g := graph.New()
	g.AddTask("only", 10)
	p, _ := NewProblem(g, 1) // needs speed 10, top mode 2
	dm, _ := model.NewDiscrete([]float64{1, 2})
	if _, err := p.SolveDiscreteSP(dm, graph.SPLeaf(0), DiscreteOptions{}); err == nil {
		t.Fatal("accepted infeasible SP instance")
	}
}

func TestDiscreteWrongKinds(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 100)
	cm, _ := model.NewContinuous(2)
	if _, err := p.SolveDiscreteBB(cm, DiscreteOptions{}); err == nil {
		t.Fatal("BB accepted continuous model")
	}
	if _, err := p.SolveDiscreteGreedy(cm); err == nil {
		t.Fatal("greedy accepted continuous model")
	}
	vm, _ := model.NewVddHopping([]float64{1, 2})
	if _, err := p.SolveDiscreteRoundUp(vm, ContinuousOptions{}); err == nil {
		t.Fatal("round-up accepted vdd model")
	}
}

func TestDiscreteIncrementalModelAccepted(t *testing.T) {
	// Incremental is a special case of Discrete for the exact solvers.
	p, _ := NewProblem(diamondGraph(), 8)
	im, _ := model.NewIncremental(0.5, 2, 0.5)
	sol, err := p.SolveDiscreteBB(im, DiscreteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
}

// Property: on random chains the SP Pareto DP equals exhaustive enumeration.
func TestDiscreteChainProperty(t *testing.T) {
	modes := []float64{0.9, 1.5, 2.1}
	dm, _ := model.NewDiscrete(modes)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		g := graph.Chain(rng, n, graph.UniformWeights(1, 4))
		dmin, _ := g.MinimalDeadline(modes[len(modes)-1])
		D := dmin * (1.05 + rng.Float64())
		p, err := NewProblem(g, D)
		if err != nil {
			return false
		}
		order, _ := g.IsChain()
		sp, err := p.SolveDiscreteSP(dm, graph.ChainExpr(order), DiscreteOptions{})
		if err != nil {
			return false
		}
		want, ok := exhaustiveDiscrete(p, modes)
		if !ok {
			return false
		}
		return relDiff(sp.Energy, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The continuous optimum always lower-bounds the discrete optimum
// (restricting speeds can only cost energy), and the gap closes as the mode
// grid refines — the motivation for Vdd-Hopping and Incremental.
func TestDiscreteGapShrinksWithMoreModes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	eg := randomExecGraph(t, rng, 7, 2)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*1.6)
	cont, err := p.SolveContinuous(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratioFor := func(numModes int) float64 {
		modes := make([]float64, numModes)
		for i := range modes {
			modes[i] = 0.4 + (2.0-0.4)*float64(i)/float64(numModes-1)
		}
		dm, err := model.NewDiscrete(modes)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := p.SolveDiscreteBB(dm, DiscreteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return sol.Energy / cont.Energy
	}
	coarse := ratioFor(2)
	fine := ratioFor(9)
	if coarse < 1-1e-9 || fine < 1-1e-9 {
		t.Fatalf("discrete beat continuous: coarse %v fine %v", coarse, fine)
	}
	if fine > coarse+1e-9 {
		t.Fatalf("finer grid did not help: coarse %v fine %v", coarse, fine)
	}
}
