package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestAlphaTaskEnergy(t *testing.T) {
	// α = 3 reduces to w·s².
	if AlphaTaskEnergy(6, 2, 3) != 24 {
		t.Fatalf("AlphaTaskEnergy(6,2,3) = %v", AlphaTaskEnergy(6, 2, 3))
	}
	// α = 2: w·s.
	if AlphaTaskEnergy(6, 2, 2) != 12 {
		t.Fatalf("AlphaTaskEnergy(6,2,2) = %v", AlphaTaskEnergy(6, 2, 2))
	}
	if !math.IsInf(AlphaTaskEnergy(1, 0, 3), 1) {
		t.Fatal("zero speed should be infinite")
	}
	if AlphaTaskEnergy(0, 0, 3) != 0 {
		t.Fatal("zero cost should be free")
	}
}

func TestAlphaRejectsBadExponent(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 100)
	for _, alpha := range []float64{1, 0.5, -1, math.Inf(1)} {
		if _, err := p.SolveContinuousNumericAlpha(2, alpha, ContinuousOptions{}); err == nil {
			t.Fatalf("accepted α = %v", alpha)
		}
		if _, err := p.SolveSPContinuousAlpha(graph.SPLeaf(0), alpha); err == nil {
			t.Fatalf("SP solver accepted α = %v", alpha)
		}
	}
}

func TestAlphaThreeMatchesStandardSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, e := graph.RandomSP(rng, 10, graph.UniformWeights(1, 5))
	dmin, _ := g.MinimalDeadline(2)
	p, _ := NewProblem(g, dmin*2)
	std, err := p.SolveSPContinuous(e, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := p.SolveSPContinuousAlpha(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(std.Energy, gen.Energy) > 1e-12 {
		t.Fatalf("α=3 algebra %v vs standard %v", gen.Energy, std.Energy)
	}
	// And the numeric generalization agrees too.
	num, err := p.SolveContinuousNumericAlpha(math.Inf(1), 3, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(num.Energy, std.Energy) > 5e-4 {
		t.Fatalf("α=3 numeric %v vs standard %v", num.Energy, std.Energy)
	}
}

func TestAlphaEquivalentWeight(t *testing.T) {
	g := graph.New()
	g.AddTask("", 3)
	g.AddTask("", 4)
	e := graph.SPParallelOf(graph.SPLeaf(0), graph.SPLeaf(1))
	// α = 2: (3² + 4²)^(1/2) = 5.
	if got := EquivalentWeightAlpha(g, e, 2); relDiff(got, 5) > 1e-12 {
		t.Fatalf("W(α=2) = %v, want 5", got)
	}
	// Series adds regardless of α.
	s := graph.SPSeriesOf(graph.SPLeaf(0), graph.SPLeaf(1))
	if got := EquivalentWeightAlpha(g, s, 2.5); got != 7 {
		t.Fatalf("series W = %v, want 7", got)
	}
}

// Property: for random SP graphs and α ∈ {2, 2.5, 3}, the generalized
// algebra matches the generalized numeric solver.
func TestAlphaAlgebraMatchesNumericProperty(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := []float64{2, 2.5, 3}[int(pick)%3]
		n := 2 + rng.Intn(8)
		g, e := graph.RandomSP(rng, n, graph.UniformWeights(1, 5))
		dmin, _ := g.MinimalDeadline(2)
		p, err := NewProblem(g, dmin*(1.5+rng.Float64()))
		if err != nil {
			return false
		}
		closed, err := p.SolveSPContinuousAlpha(e, alpha)
		if err != nil {
			return false
		}
		num, err := p.SolveContinuousNumericAlpha(math.Inf(1), alpha, ContinuousOptions{})
		if err != nil {
			return false
		}
		if relDiff(closed.Energy, num.Energy) > 1e-3 {
			return false
		}
		// Closed form can never be beaten (it is the optimum).
		return closed.Energy <= num.Energy*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaClosedFormValue(t *testing.T) {
	// Chain of total weight W: E = W^α / D^(α-1).
	rng := rand.New(rand.NewSource(2))
	g := graph.Chain(rng, 4, graph.UniformWeights(1, 3))
	order, _ := g.IsChain()
	e := graph.ChainExpr(order)
	D := g.TotalWeight() / 1.3
	p, _ := NewProblem(g, D)
	for _, alpha := range []float64{2, 2.2, 3} {
		sol, err := p.SolveSPContinuousAlpha(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(g.TotalWeight(), alpha) / math.Pow(D, alpha-1)
		if relDiff(sol.Energy, want) > 1e-9 {
			t.Fatalf("α=%v: energy %v, want %v", alpha, sol.Energy, want)
		}
		if relDiff(sol.Energy, p.SPOptimalEnergyAlpha(e, alpha)) > 1e-12 {
			t.Fatal("SPOptimalEnergyAlpha disagrees")
		}
	}
}

// With a smaller exponent, running faster is cheaper, so at a fixed deadline
// the relative penalty of the all-smax baseline shrinks as α decreases.
func TestAlphaEffectOnReclaimingGain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, e := graph.RandomSP(rng, 10, graph.UniformWeights(1, 5))
	dmin, _ := g.MinimalDeadline(2)
	D := dmin * 3
	p, _ := NewProblem(g, D)
	gainAt := func(alpha float64) float64 {
		opt, err := p.SolveSPContinuousAlpha(e, alpha)
		if err != nil {
			t.Fatal(err)
		}
		allmax := 0.0
		for i := 0; i < g.N(); i++ {
			allmax += AlphaTaskEnergy(g.Weight(i), 2, alpha)
		}
		return allmax / opt.Energy
	}
	if g2, g3 := gainAt(2), gainAt(3); g3 <= g2 {
		t.Fatalf("cubic power should reward reclaiming more: gain(α=2)=%v gain(α=3)=%v", g2, g3)
	}
}

func TestAlphaInfeasible(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 0.5)
	if _, err := p.SolveContinuousNumericAlpha(2, 2.5, ContinuousOptions{}); err == nil {
		t.Fatal("accepted infeasible α instance")
	}
}
