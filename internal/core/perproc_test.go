package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
)

// buildMapped returns (app graph, mapping, execution graph).
func buildMapped(t *testing.T, rng *rand.Rand, n, p int) (*graph.Graph, *platform.Mapping, *graph.Graph) {
	t.Helper()
	g := graph.GnpDAG(rng, n, 0.25, graph.UniformWeights(1, 5))
	m, err := platform.ListSchedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := platform.BuildExecutionGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return g, m, eg
}

func TestPerProcessorSharedSpeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, m, eg := buildMapped(t, rng, 12, 3)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*2)
	sol, err := p.SolvePerProcessorContinuous(m, 2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
	speeds, _ := sol.Speeds()
	// Every task on one processor shares its speed.
	for q, list := range m.Order {
		for _, task := range list[1:] {
			if relDiff(speeds[task], speeds[list[0]]) > 1e-9 {
				t.Fatalf("processor %d mixes speeds %v and %v", q, speeds[list[0]], speeds[task])
			}
		}
	}
}

// The granularity hierarchy: per-task ≤ per-processor ≤ global uniform
// (each coarser control is a restriction of the finer one).
func TestGranularityHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		_, m, eg := buildMapped(t, rng, 10+rng.Intn(8), 2+rng.Intn(3))
		dmin, _ := eg.MinimalDeadline(2)
		p, _ := NewProblem(eg, dmin*(1.3+rng.Float64()))
		perTask, err := p.SolveContinuousNumeric(2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		perProc, err := p.SolvePerProcessorContinuous(m, 2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cm := perProc.Model
		uni, err := p.SolveUniform(cm)
		if err != nil {
			t.Fatal(err)
		}
		if perTask.Energy > perProc.Energy*(1+1e-5) {
			t.Fatalf("trial %d: per-task %v worse than per-proc %v", trial, perTask.Energy, perProc.Energy)
		}
		if perProc.Energy > uni.Energy*(1+1e-5) {
			t.Fatalf("trial %d: per-proc %v worse than uniform %v", trial, perProc.Energy, uni.Energy)
		}
	}
}

func TestPerProcessorSingleProcEqualsUniform(t *testing.T) {
	// With one processor the execution graph is a chain; per-processor and
	// global-uniform coincide, both at speed Σw/D.
	rng := rand.New(rand.NewSource(3))
	g := graph.GnpDAG(rng, 8, 0.3, graph.UniformWeights(1, 4))
	m, err := platform.SingleProcessor(g)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := platform.BuildExecutionGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	D := g.TotalWeight() / 1.4
	p, _ := NewProblem(eg, D)
	perProc, err := p.SolvePerProcessorContinuous(m, 2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	speeds, _ := perProc.Speeds()
	for _, s := range speeds {
		if relDiff(s, 1.4) > 1e-4 {
			t.Fatalf("single-proc speed %v, want 1.4", s)
		}
	}
}

func TestPerProcessorIdleProcessor(t *testing.T) {
	// A mapping with an empty processor must not break the solver.
	g := graph.New()
	g.AddTask("a", 2)
	g.AddTask("b", 3)
	g.MustAddEdge(0, 1)
	m := &platform.Mapping{Order: [][]int{{0, 1}, {}}}
	eg, err := platform.BuildExecutionGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem(eg, 10)
	sol, err := p.SolvePerProcessorContinuous(m, 2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
	speeds, _ := sol.Speeds()
	// Chain of weight 5 in deadline 10 → speed 0.5.
	for _, s := range speeds {
		if relDiff(s, 0.5) > 1e-4 {
			t.Fatalf("speed %v, want 0.5", s)
		}
	}
}

func TestPerProcessorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	_, m, eg := buildMapped(t, rng, 8, 2)
	p, _ := NewProblem(eg, 100)
	if _, err := p.SolvePerProcessorContinuous(m, 0, ContinuousOptions{}); err == nil {
		t.Fatal("accepted smax=0")
	}
	tight, _ := NewProblem(eg, 0.01)
	if _, err := tight.SolvePerProcessorContinuous(m, 2, ContinuousOptions{}); err == nil {
		t.Fatal("accepted infeasible deadline")
	}
	wrong := &platform.Mapping{Order: [][]int{{0}}}
	if _, err := p.SolvePerProcessorContinuous(wrong, 2, ContinuousOptions{}); err == nil {
		t.Fatal("accepted incomplete mapping")
	}
}
