// Package core implements MinEnergy(G, D), the paper's optimization problem:
// given an execution graph G (precedence edges plus the serialization edges
// induced by a fixed mapping) and a deadline D, choose task speeds that
// minimize the total dynamic energy Σ sᵢ³·dᵢ = Σ wᵢ·sᵢ², subject to every
// task finishing by D.
//
// One solver per energy model:
//
//   - Continuous — closed forms for chains and forks (Theorem 1), the
//     equivalent-weight algebra for trees and series-parallel graphs
//     (Theorem 2), and a log-barrier geometric-program solver for arbitrary
//     DAGs (Section 2.1).
//   - Vdd-Hopping — exact linear program (Theorem 3).
//   - Discrete / Incremental — NP-complete (Theorem 4): exact branch-and-
//     bound and an exact Pareto dynamic program for SP-shaped graphs, plus
//     the polynomial approximation algorithm of Theorem 5 and the greedy /
//     round-up heuristics behind Proposition 1.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/sched"
)

// Problem is an instance of MinEnergy(G, D).
type Problem struct {
	// G is the execution graph: the application's precedence edges plus the
	// serialization edges of the given mapping (see platform.BuildExecutionGraph).
	G *graph.Graph
	// Deadline is the bound D on the completion time of every task.
	Deadline float64
}

// NewProblem validates and wraps an instance.
func NewProblem(g *graph.Graph, deadline float64) (*Problem, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !(deadline > 0) {
		return nil, fmt.Errorf("core: deadline must be positive, got %v", deadline)
	}
	return &Problem{G: g, Deadline: deadline}, nil
}

// ErrInfeasible is returned when no speed assignment meets the deadline.
var ErrInfeasible = errors.New("core: infeasible — deadline below the fastest possible makespan")

// MinimalDeadline returns the smallest feasible deadline at top speed smax.
func (p *Problem) MinimalDeadline(smax float64) (float64, error) {
	return p.G.MinimalDeadline(smax)
}

// CheckFeasible verifies D ≥ critical-path weight / smax.
func (p *Problem) CheckFeasible(smax float64) error {
	dmin, err := p.MinimalDeadline(smax)
	if err != nil {
		return err
	}
	if dmin > p.Deadline*(1+1e-12) {
		return fmt.Errorf("%w: need D ≥ %.9g, have %.9g", ErrInfeasible, dmin, p.Deadline)
	}
	return nil
}

// Stats carries solver diagnostics.
type Stats struct {
	// Algorithm names the solving procedure.
	Algorithm string
	// Nodes counts branch-and-bound nodes (discrete exact solver).
	Nodes int
	// Pivots counts simplex pivots (Vdd-Hopping LP).
	Pivots int
	// Newton counts interior-point Newton iterations (continuous numeric).
	Newton int
	// FrontierPeak is the largest Pareto frontier (discrete SP solver).
	FrontierPeak int
	// Exact is true when the result is provably optimal for its model.
	Exact bool
	// BoundFactor is the a-priori approximation guarantee for approximate
	// algorithms (1 for exact ones).
	BoundFactor float64
	// PrecedenceRowsDropped counts transitively implied precedence rows
	// removed before constraint assembly (continuous numeric on dense
	// DAGs). The feasible set is unchanged; the barrier just carries
	// fewer terms.
	PrecedenceRowsDropped int
}

// Solution is a feasible (or optimal) answer to MinEnergy for some model.
type Solution struct {
	Model    model.Model
	Schedule *sched.Schedule
	Energy   float64
	Stats    Stats
}

// Speeds returns per-task constant speeds when the solution uses them.
func (s *Solution) Speeds() ([]float64, error) { return s.Schedule.Speeds() }

// Verify re-checks a solution independently: schedule feasibility against
// the problem's deadline, speed admissibility under the solution's model,
// full work execution, and energy accounting (recomputed from profiles).
func (p *Problem) Verify(s *Solution, tol float64) error {
	if s == nil || s.Schedule == nil {
		return errors.New("core: nil solution")
	}
	if s.Schedule.G != p.G {
		// Allow a structural clone — but insist on the canonical encoding
		// (weights and the full edge set), not just matching node/edge
		// counts, so a schedule built on a different graph that happens to
		// share N and M cannot validate against this problem.
		if !bytes.Equal(s.Schedule.G.CanonicalBytes(), p.G.CanonicalBytes()) {
			return errors.New("core: solution schedule built on a different graph")
		}
	}
	if err := s.Schedule.Validate(p.Deadline, &s.Model, tol); err != nil {
		return err
	}
	energy := 0.0
	for _, prof := range s.Schedule.Profiles {
		energy += prof.Energy()
	}
	if math.Abs(energy-s.Energy) > tol*math.Max(1, energy) {
		return fmt.Errorf("core: reported energy %.9g but profiles account %.9g", s.Energy, energy)
	}
	return nil
}

// solutionFromSpeeds packages constant speeds into a verified Solution.
func (p *Problem) solutionFromSpeeds(m model.Model, speeds []float64, st Stats) (*Solution, error) {
	s, err := sched.FromSpeeds(p.G, speeds)
	if err != nil {
		return nil, err
	}
	return &Solution{Model: m, Schedule: s, Energy: s.Energy, Stats: st}, nil
}
