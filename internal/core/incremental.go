package core

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Theorem 5: with the Incremental model, MinEnergy(G, D) can be
// approximated within (1 + δ/smin)²·(1 + 1/K)² in time polynomial in the
// instance size and K. The algorithm:
//
//  1. Solve the Continuous relaxation with speeds restricted to
//     [smin, smax] to relative accuracy governed by K (the (1+1/K)² factor
//     pays for working with finite-precision speeds, since the exact
//     continuous optimum involves irrational cube roots the paper shows we
//     cannot even write down polynomially);
//  2. inflate every speed by (1 + 1/K) — absorbing the numeric gap while
//     preserving feasibility — and round it up to the δ-grid
//     {smin + i·δ} ∪ {smax}.
//
// Rounding up only shortens tasks, so the schedule stays feasible; each
// speed grows by at most (1+1/K)(1+δ/smin), so the energy (∝ s²) is within
// (1+δ/smin)²(1+1/K)² of the continuous lower bound, hence of the
// Incremental optimum.

// SolveIncrementalApprox runs the Theorem 5 algorithm. K ≥ 1 trades
// accuracy for the cost of the continuous solve.
func (p *Problem) SolveIncrementalApprox(m model.Model, K int, opts ContinuousOptions) (*Solution, error) {
	if m.Kind != model.Incremental {
		return nil, fmt.Errorf("core: SolveIncrementalApprox needs an Incremental model, got %s", m.Kind)
	}
	bound := Theorem5Bound(m, K)
	sol, err := p.approxByRounding(m, K, opts)
	if err != nil {
		return nil, err
	}
	sol.Stats.Algorithm = "incremental-approx(K)"
	sol.Stats.BoundFactor = bound
	return sol, nil
}

// SolveDiscreteApprox is the second bullet of Proposition 1: the same
// construction applied to an arbitrary Discrete mode set approximates the
// discrete optimum within (1 + α/s₁)²·(1 + 1/K)², α = max mode gap.
func (p *Problem) SolveDiscreteApprox(m model.Model, K int, opts ContinuousOptions) (*Solution, error) {
	if err := discreteKind(m); err != nil {
		return nil, err
	}
	bound := Proposition1DiscreteBound(m, K)
	sol, err := p.approxByRounding(m, K, opts)
	if err != nil {
		return nil, err
	}
	sol.Stats.Algorithm = "discrete-approx(K)"
	sol.Stats.BoundFactor = bound
	return sol, nil
}

func (p *Problem) approxByRounding(m model.Model, K int, opts ContinuousOptions) (*Solution, error) {
	if K < 1 {
		return nil, fmt.Errorf("core: K must be a positive integer, got %d", K)
	}
	bounded := opts
	bounded.SMin = m.SMin
	// Solve the speed-bounded continuous relaxation tightly enough that the
	// (1+1/K) inflation dominates the numeric error.
	if bounded.Tol == 0 {
		bounded.Tol = math.Min(1e-10, 0.01/float64(K*K))
	}
	cont, err := p.SolveContinuousNumeric(m.SMax, bounded)
	if err != nil {
		return nil, err
	}
	contSpeeds, err := cont.Speeds()
	if err != nil {
		return nil, err
	}
	inflate := 1 + 1/float64(K)
	speeds := make([]float64, len(contSpeeds))
	for i, s := range contSpeeds {
		target := s * inflate
		if target >= m.SMax {
			speeds[i] = m.SMax // still ≥ s, so feasibility is preserved
			continue
		}
		up, err := m.RoundUp(target)
		if err != nil {
			up = m.SMax
		}
		speeds[i] = up
	}
	return p.solutionFromSpeedsAt(m, speeds, opts.Release, Stats{Exact: false})
}

// Theorem5Bound returns (1 + δ/smin)²·(1 + 1/K)².
func Theorem5Bound(m model.Model, K int) float64 {
	a := 1 + m.Delta/m.SMin
	b := 1 + 1/float64(K)
	return a * a * b * b
}

// Proposition1ContinuousBound returns (1 + δ/smin)²: how closely the
// Incremental model itself can track the Continuous optimum (first bullet
// of Proposition 1).
func Proposition1ContinuousBound(m model.Model) float64 {
	a := 1 + m.Delta/m.SMin
	return a * a
}

// Proposition1DiscreteBound returns (1 + α/s₁)²·(1 + 1/K)² with α the
// largest gap between consecutive modes (second bullet of Proposition 1).
func Proposition1DiscreteBound(m model.Model, K int) float64 {
	a := 1 + m.MaxGap()/m.SMin
	b := 1 + 1/float64(K)
	return a * a * b * b
}
