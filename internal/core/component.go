package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// Component decomposition: the full-length version of the paper (Aupy,
// Benoit, Dufossé, Robert, arXiv:1204.0939) observes that energy is additive
// across independent subgraphs sharing the deadline — MinEnergy(G, D) on a
// graph with weakly-connected components C₁…C_k decomposes into k
// independent MinEnergy(Cⱼ, D) instances whose optimal energies sum and
// whose speed assignments stitch back by task ID. This file provides the
// split/merge helpers plus SolveAuto / SolvePlanned, the model-aware
// structured dispatch built on them (the explainable routing layer lives in
// internal/plan).

// Component is one weakly-connected component of an execution graph, wrapped
// as its own subproblem under the original deadline.
type Component struct {
	// Prob is the subproblem on the induced subgraph (task IDs re-densified).
	Prob *Problem
	// Tasks maps component-local IDs back to the original: Tasks[local] = id.
	Tasks []int
}

// SplitComponents decomposes p into its weakly-connected components, each an
// independent subproblem with the same deadline. A connected graph yields a
// single component whose Prob shares p's graph (no copy).
func (p *Problem) SplitComponents() ([]Component, error) {
	sets := p.G.WeaklyConnectedComponents()
	if len(sets) == 1 {
		ids := sets[0]
		return []Component{{Prob: p, Tasks: ids}}, nil
	}
	comps := make([]Component, 0, len(sets))
	for _, nodes := range sets {
		sub, back, err := p.G.InducedSubgraph(nodes)
		if err != nil {
			return nil, err
		}
		sp, err := NewProblem(sub, p.Deadline)
		if err != nil {
			return nil, err
		}
		comps = append(comps, Component{Prob: sp, Tasks: back})
	}
	return comps, nil
}

// MergeSolutions stitches per-component solutions back onto p's full
// execution graph: profiles map by task ID, energy re-accounts from the
// merged schedule (it equals the sum of component energies), and solver
// diagnostics aggregate (counters sum, Exact ANDs, BoundFactor takes the
// worst component since Σ ρⱼ·Eⱼ* ≤ max ρⱼ · Σ Eⱼ*).
func (p *Problem) MergeSolutions(comps []Component, sols []*Solution) (*Solution, error) {
	if len(comps) != len(sols) {
		return nil, fmt.Errorf("core: %d solutions for %d components", len(sols), len(comps))
	}
	if len(comps) == 1 && comps[0].Prob == p {
		return sols[0], nil
	}
	profiles := make([]sched.Profile, p.G.N())
	st := Stats{Exact: true, BoundFactor: 1}
	var names []string
	seen := map[string]bool{}
	var mdl model.Model
	for ci, sol := range sols {
		if sol == nil || sol.Schedule == nil {
			return nil, fmt.Errorf("core: component %d has no solution", ci)
		}
		for local, id := range comps[ci].Tasks {
			profiles[id] = sol.Schedule.Profiles[local]
		}
		mdl = sol.Model
		st.Nodes += sol.Stats.Nodes
		st.Pivots += sol.Stats.Pivots
		st.Newton += sol.Stats.Newton
		if sol.Stats.FrontierPeak > st.FrontierPeak {
			st.FrontierPeak = sol.Stats.FrontierPeak
		}
		st.Exact = st.Exact && sol.Stats.Exact
		if sol.Stats.BoundFactor > st.BoundFactor {
			st.BoundFactor = sol.Stats.BoundFactor
		}
		if !seen[sol.Stats.Algorithm] {
			seen[sol.Stats.Algorithm] = true
			names = append(names, sol.Stats.Algorithm)
		}
	}
	sort.Strings(names)
	st.Algorithm = fmt.Sprintf("planned(%d components: %s)", len(comps), strings.Join(names, ", "))
	s, err := sched.FromProfiles(p.G, profiles)
	if err != nil {
		return nil, err
	}
	return &Solution{Model: mdl, Schedule: s, Energy: s.Energy, Stats: st}, nil
}

// ErrNotSeriesParallel is returned by SolveDiscreteSPAuto when the
// transitive reduction of the execution graph is not series-parallel.
var ErrNotSeriesParallel = errors.New("core: execution graph is not series-parallel")

// SolveDiscreteSPAuto recognizes a series-parallel shape in the transitive
// reduction of the execution graph and runs the exact Pareto DP, re-expanding
// the speeds onto the original graph (path structure, hence feasibility, is
// identical). Returns ErrNotSeriesParallel when the shape is absent.
func (p *Problem) SolveDiscreteSPAuto(m model.Model, opts DiscreteOptions) (*Solution, error) {
	reduced, err := p.G.TransitiveReduction()
	if err != nil {
		return nil, err
	}
	expr, ok := graph.DecomposeSP(reduced)
	if !ok {
		return nil, ErrNotSeriesParallel
	}
	return p.SolveDiscreteSPOn(m, reduced, expr, opts)
}

// SolveDiscreteSPOn is SolveDiscreteSPAuto with the recognition already
// done: expr is a series-parallel decomposition of reduced, the transitive
// reduction of the execution graph — or of the execution graph itself, in
// which case reduced is nil and the DP runs on p directly. The planner uses
// this to reuse the expression recovered during classification instead of
// paying the O(n²·m) recognition twice.
func (p *Problem) SolveDiscreteSPOn(m model.Model, reduced *graph.Graph, expr *graph.SPExpr, opts DiscreteOptions) (*Solution, error) {
	if reduced == nil {
		return p.SolveDiscreteSP(m, expr, opts)
	}
	rp, err := NewProblem(reduced, p.Deadline)
	if err != nil {
		return nil, err
	}
	sol, err := rp.SolveDiscreteSP(m, expr, opts)
	if err != nil {
		return nil, err
	}
	speeds, err := sol.Speeds()
	if err != nil {
		return nil, fmt.Errorf("core: SP solution has non-constant speeds: %w", err)
	}
	s, err := sched.FromSpeeds(p.G, speeds)
	if err != nil {
		return nil, err
	}
	return &Solution{Model: sol.Model, Schedule: s, Energy: s.Energy, Stats: sol.Stats}, nil
}

// SolveSPContinuousOn runs the Theorem 2 equivalent-weight algebra with the
// recognition already done (same contract as SolveDiscreteSPOn: reduced nil
// means expr refers to p's own graph). Errors when the finite smax binds —
// callers fall back to the interior point.
func (p *Problem) SolveSPContinuousOn(reduced *graph.Graph, expr *graph.SPExpr, smax float64) (*Solution, error) {
	if reduced == nil {
		return p.SolveSPContinuous(expr, smax)
	}
	// Speeds computed on the reduced graph are valid for the original: both
	// graphs have identical path structure.
	rp := &Problem{G: reduced, Deadline: p.Deadline}
	sol, err := rp.SolveSPContinuous(expr, smax)
	if err != nil {
		return nil, err
	}
	speeds, err := sol.Speeds()
	if err != nil {
		return nil, err
	}
	return p.solutionFromSpeeds(sol.Model, speeds, sol.Stats)
}

// PlannedOptions tunes SolveAuto and SolvePlanned.
type PlannedOptions struct {
	// Workers bounds concurrent component solves (default GOMAXPROCS).
	Workers int
	// K is the Theorem 5 accuracy parameter (default 4).
	K int
	// Continuous tunes the interior-point fallback.
	Continuous ContinuousOptions
	// Discrete tunes the exact discrete solvers.
	Discrete DiscreteOptions
}

func (o PlannedOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o PlannedOptions) k() int {
	if o.K > 0 {
		return o.K
	}
	return 4
}

// SolveAuto picks the cheapest exact method for the model on this problem,
// mirroring the paper's complexity landscape: the continuous dispatcher's
// closed forms / SP algebra / interior point, the Vdd-Hopping LP, the exact
// Pareto DP on series-parallel shapes (branch-and-bound otherwise) for
// Discrete, and the Theorem 5 approximation for Incremental.
func (p *Problem) SolveAuto(m model.Model, opts PlannedOptions) (*Solution, error) {
	switch m.Kind {
	case model.Continuous:
		return p.SolveContinuous(m.SMax, opts.Continuous)
	case model.VddHopping:
		return p.SolveVddHopping(m)
	case model.Incremental:
		return p.SolveIncrementalApprox(m, opts.k(), opts.Continuous)
	case model.Discrete:
		sol, err := p.SolveDiscreteSPAuto(m, opts.Discrete)
		if err == nil {
			return sol, nil
		}
		if !errors.Is(err, ErrNotSeriesParallel) && !errors.Is(err, ErrSearchLimit) {
			return nil, err
		}
		return p.SolveDiscreteBB(m, opts.Discrete)
	}
	return nil, fmt.Errorf("core: no auto solver for model %s", m.Kind)
}

// SolvePlanned is the component-aware entry point: it splits the execution
// graph into weakly-connected components, solves each independently with
// SolveAuto on a bounded worker pool (the deadline applies per component),
// and merges the solutions. A connected graph degenerates to SolveAuto with
// no overhead or copying.
func (p *Problem) SolvePlanned(m model.Model, opts PlannedOptions) (*Solution, error) {
	comps, err := p.SplitComponents()
	if err != nil {
		return nil, err
	}
	if len(comps) == 1 {
		return p.SolveAuto(m, opts)
	}
	sols, err := SolveComponents(comps, opts.workers(), func(_ int, c Component) (*Solution, error) {
		return c.Prob.SolveAuto(m, opts)
	})
	if err != nil {
		return nil, err
	}
	return p.MergeSolutions(comps, sols)
}

// SolveComponents runs solve over every component on a pool of at most
// workers goroutines and returns the solutions in component order. The first
// error wins; remaining solves still run to completion (solver kernels are
// not interruptible) before it is returned.
func SolveComponents(comps []Component, workers int, solve func(int, Component) (*Solution, error)) ([]*Solution, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	sols := make([]*Solution, len(comps))
	errs := make([]error, len(comps))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range comps {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Solver panics become that component's error instead of
			// killing the process — these goroutines are beyond any
			// HTTP-layer recovery.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = resilience.RecoverPanic(fmt.Sprintf("component %d solve", i), r)
				}
			}()
			sols[i], errs[i] = solve(i, comps[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sols, nil
}
