package core

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/model"
)

// The general-DAG continuous solver. Following Section 2.1 of the paper,
// MinEnergy(G, D) under the Continuous model is a geometric program: with
// durations dᵢ = wᵢ/sᵢ as variables the energy is Σ wᵢ³/dᵢ², a convex
// function, and the scheduling constraints are linear in the completion
// times tᵢ and durations dᵢ:
//
//	tᵢ + dⱼ ≤ tⱼ   for every edge (i, j)
//	dᵢ ≤ tᵢ        (start times are non-negative)
//	tᵢ ≤ D
//	dᵢ ≥ wᵢ/smax   (speed cap)
//
// We solve it with the log-barrier interior-point method of internal/convex
// after normalizing time by D and work by the critical-path weight, so all
// quantities are O(1) regardless of instance scale.

// ContinuousOptions tunes the numeric solver.
type ContinuousOptions struct {
	// Tol is the relative duality-gap target (default 1e-10).
	Tol float64
	// SMin, when positive, bounds speeds from below (sᵢ ≥ SMin): the
	// speed-bounded relaxation used by the Theorem 5 / Proposition 1
	// approximation constructions. Zero means unbounded below.
	SMin float64
	// Release, when non-nil, gives each task an earliest permitted start
	// (the residual re-solve constraint: frozen predecessors of an
	// executing schedule finished at these absolute times). nil means
	// every task may start at 0.
	Release []float64
	// Warm, when non-nil, seeds the interior point from the previous
	// solution's speed vector. The optimum (and the tolerance it is found
	// to) is unchanged — only the centering work shrinks. Stale or
	// infeasible warm data falls back to the cold start silently.
	Warm *WarmStart
	// DenseKernel routes the barrier method through the dense reference
	// kernel (O(m·n²) assembly, O(n³) Cholesky) instead of the default
	// graph-structured sparse LDLᵀ path. It exists as the oracle the
	// property suite checks the sparse path against; production solves
	// should leave it false.
	DenseKernel bool
	// Workers caps the parallelism of the sparse kernel (elimination-tree
	// factorization, constraint assembly, mat-vec loops). 0 selects
	// automatically by system size and GOMAXPROCS; 1 or negative forces
	// the sequential path (the bisection knob). See convex.Options.
	Workers int
	// Ordering forces the sparse kernel's fill-reducing ordering; the
	// zero value picks the cheaper of RCM and nested dissection.
	Ordering convex.Ordering
	// Kernels, when non-nil, caches the structure-determined compilation
	// of the geometric program (transitive reduction, CSR constraint
	// matrix, fill-reducing ordering, symbolic factorization) keyed by
	// the graph's structural fingerprint. Requests whose graphs share a
	// shape then skip the symbolic work entirely and pay only the numeric
	// solve; see KernelCache. Ignored by the dense oracle path.
	Kernels *KernelCache
}

// energyObjective is Σ wᵢ³/dᵢ² over x = (t₁..tₙ, d₁..dₙ); the t-part does
// not appear in the objective.
type energyObjective struct {
	w []float64 // task weights (normalized)
	n int
}

func (f *energyObjective) Value(x linalg.Vector) float64 {
	v := 0.0
	for i := 0; i < f.n; i++ {
		d := x[f.n+i]
		v += f.w[i] * f.w[i] * f.w[i] / (d * d)
	}
	return v
}

func (f *energyObjective) Gradient(x, g linalg.Vector) {
	for i := 0; i < f.n; i++ {
		g[i] = 0
	}
	for i := 0; i < f.n; i++ {
		d := x[f.n+i]
		w3 := f.w[i] * f.w[i] * f.w[i]
		g[f.n+i] = -2 * w3 / (d * d * d)
	}
}

func (f *energyObjective) Hessian(x linalg.Vector, h *linalg.Matrix) {
	for i := 0; i < f.n; i++ {
		d := x[f.n+i]
		w3 := f.w[i] * f.w[i] * f.w[i]
		h.Add(f.n+i, f.n+i, 6*w3/(d*d*d*d))
	}
}

func (f *energyObjective) HessianDiag(x, h linalg.Vector) {
	for i := 0; i < f.n; i++ {
		h[i] = 0
	}
	for i := 0; i < f.n; i++ {
		d := x[f.n+i]
		w3 := f.w[i] * f.w[i] * f.w[i]
		h[f.n+i] = 6 * w3 / (d * d * d * d)
	}
}

// SolveContinuousNumeric solves the geometric program on an arbitrary
// execution graph. It is the reference oracle for every closed form in this
// package. Release times (opts.Release) add the residual constraints
// tᵢ − dᵢ ≥ rᵢ; a warm start (opts.Warm) only changes where centering
// begins.
func (p *Problem) SolveContinuousNumeric(smax float64, opts ContinuousOptions) (*Solution, error) {
	if !(smax > 0) {
		return nil, model.ErrBadSMax
	}
	if opts.SMin < 0 || opts.SMin > smax*(1+1e-12) {
		return nil, model.ErrBadRange
	}
	if err := p.CheckFeasibleFrom(smax, opts.Release); err != nil {
		return nil, err
	}
	release := opts.Release
	if release != nil && !hasRelease(release) {
		release = nil
	}
	// Degenerate band: a single admissible speed.
	if opts.SMin > 0 && opts.SMin >= smax*(1-1e-12) {
		speeds := make([]float64, p.G.N())
		for i := range speeds {
			speeds[i] = smax
		}
		m, _ := model.NewContinuous(smax)
		return p.solutionFromSpeedsAt(m, speeds, release, Stats{Algorithm: "continuous-degenerate-band", Exact: true, BoundFactor: 1})
	}
	n := p.G.N()
	cpw, err := p.G.CriticalPathWeight()
	if err != nil {
		return nil, err
	}
	// Normalize: time unit = D, work unit = cpw. Normalized weights wᵢ/cpw,
	// deadline 1, speed cap smax·D/cpw, energies scale by D²/cpw³.
	wn := make([]float64, n)
	for i := 0; i < n; i++ {
		wn[i] = p.G.Weight(i) / cpw
	}
	var rn []float64
	if release != nil {
		rn = make([]float64, n)
		for i := range rn {
			if release[i] > 0 {
				rn[i] = release[i] / p.Deadline
			}
		}
	}
	sCap := smax * p.Deadline / cpw
	if math.IsInf(smax, 1) {
		// Rigorous speed cap for the unconstrained case: in any optimum,
		// wᵢ·sᵢ² ≤ E* ≤ E(all at cpw/D) = Σwⱼ·(cpw/D)², so
		// sᵢ ≤ sqrt(Σwⱼ/wᵢ)·cpw/D. Normalized: sᵢ' ≤ sqrt(Σwⱼ'/wᵢ').
		// A single global cap with 4x headroom keeps the barrier away from
		// the true optimum for every task.
		totalN := 0.0
		minW := math.Inf(1)
		for _, w := range wn {
			totalN += w
			if w < minW {
				minW = w
			}
		}
		sCap = 4 * math.Sqrt(totalN/minW)
	}
	// If the deadline is (numerically) tight, return the all-smax solution.
	if !math.IsInf(smax, 1) {
		var dmin float64
		if release == nil {
			dmin, _ = p.MinimalDeadline(smax)
		} else {
			fastest := make([]float64, n)
			for i := range fastest {
				fastest[i] = p.G.Weight(i) / smax
			}
			dmin, _ = p.G.MakespanFrom(fastest, release)
		}
		if dmin >= p.Deadline*(1-1e-9) {
			speeds := make([]float64, n)
			for i := range speeds {
				speeds[i] = smax
			}
			m, _ := model.NewContinuous(smax)
			return p.solutionFromSpeedsAt(m, speeds, release, Stats{Algorithm: "continuous-tight-deadline", Exact: true, BoundFactor: 1})
		}
	}

	// Optional lower speed bound → upper duration bound dᵢ ≤ wᵢ/smin.
	sMinN := opts.SMin * p.Deadline / cpw
	var hi []float64
	if opts.SMin > 0 {
		hi = make([]float64, n)
		for i := 0; i < n; i++ {
			hi[i] = wn[i] / sMinN
		}
	}

	// Constraints over x = (t, d), normalized deadline 1. The structural
	// side — transitive reduction, CSR pattern and its ±1 values, the
	// compiled sparse program — comes from the kernel (cached across
	// requests sharing a graph shape when opts.Kernels is set); only the
	// right-hand side b carries this request's numbers, in the kernel's
	// fixed row order: precedence rows (0), start rows (−rᵢ), deadline
	// rows (1), duration floors (−lo), then duration ceilings (hi).
	var ker *continuousKernel
	if opts.Kernels != nil && !opts.DenseKernel {
		ker = opts.Kernels.kernel(p.G, hi != nil, opts)
	} else {
		ker = compileContinuousKernel(p.G, hi != nil, opts, opts.DenseKernel)
	}
	b := linalg.NewVector(ker.rows)
	r := len(ker.edges) // precedence rows: b = 0
	for i := 0; i < n; i++ {
		if rn != nil {
			b[r] = -rn[i]
		}
		r++
	}
	for i := 0; i < n; i++ {
		b[r] = 1
		r++
	}
	lo := make([]float64, n)
	for i := 0; i < n; i++ {
		lo[i] = wn[i] / sCap
		b[r] = -lo[i]
		r++
	}
	if hi != nil {
		for i := 0; i < n; i++ {
			b[r] = hi[i]
			r++
		}
	}

	// Strictly feasible start. Warm path: durations from the previous
	// speed vector, clamped into the admissible band and shrunk a hair so
	// every constraint is strictly slack — centering then begins next to
	// the optimum. Cold path (and warm fallback): fastest durations lo
	// give makespan M* < 1; inflate durations by μ = λ^(1/3) and finish
	// times by ν = λ^(1/3) (λ = 1/M*), which keeps every constraint
	// strictly slack. Release-dominated paths scale sublinearly in the
	// durations, so both inflations remain valid with rn present.
	x0 := p.warmStartPoint(opts.Warm, wn, lo, hi, rn)
	warmStarted := x0 != nil
	if x0 == nil {
		mstar, err := p.G.MakespanFrom(lo, rn)
		if err != nil {
			return nil, err
		}
		if mstar >= 1 {
			return nil, fmt.Errorf("%w: normalized fastest makespan %.9g ≥ 1", ErrInfeasible, mstar)
		}
		lambda := 1 / mstar
		mu := math.Cbrt(lambda)
		nu := math.Cbrt(lambda)
		d0 := make([]float64, n)
		for i := range d0 {
			d0[i] = mu * lo[i]
			if hi != nil && d0[i] >= hi[i] {
				// Stay strictly inside the duration band; the geometric mean is
				// strictly between lo and hi and only shortens d0, so the path
				// constraints keep their slack.
				d0[i] = math.Sqrt(lo[i] * hi[i])
			}
		}
		pa, err := p.G.AnalyzeFrom(d0, rn, 1)
		if err != nil {
			return nil, err
		}
		x0 = linalg.NewVector(2 * n)
		for i := 0; i < n; i++ {
			x0[i] = nu * pa.EarliestFinish[i]
			x0[n+i] = d0[i]
		}
	}

	tol := opts.Tol
	if tol == 0 {
		tol = 1e-10
	}
	obj := &energyObjective{w: wn, n: n}
	// The duality gap bound is m/t in the barrier method; request it small
	// relative to the objective scale (normalized energies are O(1)).
	// Warm starts begin next to the optimum, so AutoT0 lets the barrier
	// weight start at the point's own centrality instead of re-walking
	// the whole path from t=1 — that is what makes a warm re-solve
	// cheaper than a cold one.
	copts := convex.Options{
		Tol:      tol * math.Max(1, obj.Value(x0)),
		AutoT0:   warmStarted,
		Workers:  opts.Workers,
		Ordering: opts.Ordering,
	}
	var res *convex.Result
	if opts.DenseKernel {
		res, err = convex.Minimize(obj, ker.a.Dense(), b, x0, copts)
	} else {
		res, err = ker.prog.Minimize(obj, b, x0, copts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: continuous solve failed: %w", err)
	}
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		d := res.X[n+i]
		s := wn[i] / d // normalized speed
		// De-normalize: s_real = s · cpw / D.
		speeds[i] = s * cpw / p.Deadline
		if !math.IsInf(smax, 1) && speeds[i] > smax {
			speeds[i] = smax // clamp roundoff above the cap
		}
		if opts.SMin > 0 && speeds[i] < opts.SMin {
			speeds[i] = opts.SMin
		}
	}
	m, err := model.NewContinuous(smax)
	if err != nil {
		return nil, err
	}
	sol, err := p.solutionFromSpeedsAt(m, speeds, release, Stats{
		Algorithm:             "continuous-interior-point",
		Newton:                res.Newton,
		Exact:                 true, // up to the numeric gap
		BoundFactor:           1,
		PrecedenceRowsDropped: ker.rowsDropped,
	})
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// warmStartPoint builds a strictly feasible interior-point start from a
// previous speed vector (normalized coordinates). Returns nil when no warm
// data is available or it cannot be made strictly feasible — the caller
// falls back to the cold construction. The returned point never changes the
// optimum, only where centering begins.
func (p *Problem) warmStartPoint(warm *WarmStart, wn, lo, hi, rn []float64) linalg.Vector {
	n := len(wn)
	if warm == nil || len(warm.Speeds) != n {
		return nil
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		s := warm.Speeds[i]
		if !(s > 0) {
			return nil
		}
		// Normalized duration of task i at the previous speed: time unit D.
		d[i] = (p.G.Weight(i) / s) / p.Deadline
		// Clamp strictly inside the duration band, then shrink a hair so
		// path constraints gain slack; the floor keeps the speed cap slack.
		floor := lo[i] * (1 + 1e-9)
		if hi != nil {
			ceil := hi[i] * (1 - 1e-9)
			if floor >= ceil {
				return nil
			}
			if d[i] > ceil {
				d[i] = ceil
			}
		}
		d[i] *= 0.999
		if d[i] < floor {
			d[i] = floor
		}
		if hi != nil && d[i] >= hi[i] {
			return nil
		}
	}
	ms, err := p.G.MakespanFrom(d, rn)
	if err != nil || ms >= 1-1e-12 {
		return nil
	}
	// Inflate finishes by ν > 1 to open strict slack on every precedence
	// and release row while keeping tᵢ ≤ ν·makespan < 1.
	nu := math.Cbrt(1 / ms)
	pa, err := p.G.AnalyzeFrom(d, rn, 1)
	if err != nil {
		return nil
	}
	x0 := linalg.NewVector(2 * n)
	for i := 0; i < n; i++ {
		x0[i] = nu * pa.EarliestFinish[i]
		x0[n+i] = d[i]
	}
	return x0
}

// SolveContinuous dispatches to the cheapest exact continuous algorithm:
// chain and fork closed forms, the tree/SP equivalent-weight algebra when
// smax does not bind, and the interior-point geometric program otherwise.
func (p *Problem) SolveContinuous(smax float64, opts ContinuousOptions) (*Solution, error) {
	if opts.SMin > 0 || (opts.Release != nil && hasRelease(opts.Release)) {
		// The closed forms assume speeds unbounded below and zero releases.
		return p.SolveContinuousNumeric(smax, opts)
	}
	if _, ok := p.G.IsChain(); ok {
		return p.SolveChainContinuous(smax)
	}
	if _, ok := p.G.IsFork(); ok {
		return p.SolveForkContinuous(smax)
	}
	if e, ok := graph.TreeToSP(p.G); ok {
		if sol, err := p.SolveSPContinuous(e, smax); err == nil {
			sol.Stats.Algorithm = "tree-equivalent-weight"
			return sol, nil
		}
		// smax binds: fall through to numeric.
	} else if reduced, rerr := p.G.TransitiveReduction(); rerr == nil {
		if e, ok := graph.DecomposeSP(reduced); ok {
			if sol, err := p.SolveSPContinuousOn(reduced, e, smax); err == nil {
				return sol, nil
			}
		}
	}
	return p.SolveContinuousNumeric(smax, opts)
}
