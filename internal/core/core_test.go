package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/platform"
)

// Shared test helpers.

func diamondGraph() *graph.Graph {
	g := graph.New()
	g.AddTask("a", 1)
	g.AddTask("b", 2)
	g.AddTask("c", 3)
	g.AddTask("d", 4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	return g
}

// randomExecGraph builds a random DAG, list-schedules it on p processors,
// and returns the execution graph.
func randomExecGraph(t testing.TB, rng *rand.Rand, n, p int) *graph.Graph {
	t.Helper()
	g := graph.GnpDAG(rng, n, 0.25, graph.UniformWeights(1, 5))
	m, err := platform.ListSchedule(g, p)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := platform.BuildExecutionGraph(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return eg
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1e-300, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewProblem(t *testing.T) {
	g := diamondGraph()
	if _, err := NewProblem(g, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(g, 0); err == nil {
		t.Fatal("accepted zero deadline")
	}
	bad := graph.New()
	bad.AddTask("x", -1)
	if _, err := NewProblem(bad, 1); err == nil {
		t.Fatal("accepted invalid graph")
	}
}

func TestMinimalDeadlineAndFeasibility(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 4)
	dmin, err := p.MinimalDeadline(2)
	if err != nil || dmin != 4 { // cpw 8 / smax 2
		t.Fatalf("MinimalDeadline = %v, %v", dmin, err)
	}
	if err := p.CheckFeasible(2); err != nil {
		t.Fatalf("tight deadline should be feasible: %v", err)
	}
	if err := p.CheckFeasible(1.9); err == nil {
		t.Fatal("infeasible instance accepted")
	}
	if !errors.Is(p.CheckFeasible(1.9), ErrInfeasible) {
		t.Fatal("error should wrap ErrInfeasible")
	}
}

func TestVerifyAcceptsAndRejects(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 10)
	m, _ := model.NewContinuous(2)
	sol, err := p.solutionFromSpeeds(m, []float64{1, 1, 1, 1}, Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-9); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
	// Tamper with reported energy.
	sol.Energy *= 2
	if err := p.Verify(sol, 1e-9); err == nil {
		t.Fatal("energy tampering not detected")
	}
	sol.Energy /= 2
	// Deadline violation.
	tight, _ := NewProblem(diamondGraph(), 7)
	if err := tight.Verify(sol, 1e-9); err == nil {
		t.Fatal("deadline violation not detected")
	}
	// Model violation: speed above smax.
	m2, _ := model.NewContinuous(0.5)
	sol2, _ := p.solutionFromSpeeds(m2, []float64{1, 1, 1, 1}, Stats{})
	if err := p.Verify(sol2, 1e-9); err == nil {
		t.Fatal("speed above smax not detected")
	}
	if err := p.Verify(nil, 1e-9); err == nil {
		t.Fatal("nil solution accepted")
	}
}

func TestSolveAllMax(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 5)
	m, _ := model.NewDiscrete([]float64{1, 2})
	sol, err := p.SolveAllMax(m)
	if err != nil {
		t.Fatal(err)
	}
	// E = Σ w·smax² = 10·4 = 40.
	if relDiff(sol.Energy, 40) > 1e-12 {
		t.Fatalf("all-max energy = %v, want 40", sol.Energy)
	}
	if err := p.Verify(sol, 1e-9); err != nil {
		t.Fatal(err)
	}
	cm, _ := model.NewContinuous(math.Inf(1))
	if _, err := p.SolveAllMax(cm); err == nil {
		t.Fatal("all-max with unbounded smax should fail")
	}
}

func TestSolveUniform(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 8)
	// cpw = 8, D = 8 → uniform speed 1.
	cm, _ := model.NewContinuous(2)
	sol, err := p.SolveUniform(cm)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(sol.Energy, 10) > 1e-9 { // Σw·1²
		t.Fatalf("uniform energy = %v, want 10", sol.Energy)
	}
	// Discrete: rounds 1.0 up to an admissible mode.
	dm, _ := model.NewDiscrete([]float64{1.5, 3})
	sol2, err := p.SolveUniform(dm)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := sol2.Speeds()
	for _, s := range sp {
		if s != 1.5 {
			t.Fatalf("uniform discrete speed = %v, want 1.5", s)
		}
	}
	// Infeasible.
	tiny, _ := model.NewContinuous(0.5)
	if _, err := p.SolveUniform(tiny); err == nil {
		t.Fatal("accepted infeasible uniform")
	}
	dmLow, _ := model.NewDiscrete([]float64{0.25, 0.5})
	if _, err := p.SolveUniform(dmLow); err == nil {
		t.Fatal("accepted infeasible discrete uniform")
	}
}

// Energy ordering across baselines: uniform ≤ all-max (reclaiming global
// slack can only help), and the continuous optimum beats both.
func TestBaselineOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		eg := randomExecGraph(t, rng, 12, 3)
		dmin, _ := eg.MinimalDeadline(2)
		p, _ := NewProblem(eg, dmin*2)
		cm, _ := model.NewContinuous(2)
		allMax, err := p.SolveAllMax(cm)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := p.SolveUniform(cm)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := p.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if uni.Energy > allMax.Energy*(1+1e-9) {
			t.Fatalf("uniform %.6g beats all-max %.6g the wrong way", uni.Energy, allMax.Energy)
		}
		if opt.Energy > uni.Energy*(1+1e-6) {
			t.Fatalf("continuous optimum %.6g worse than uniform %.6g", opt.Energy, uni.Energy)
		}
		for _, s := range []*Solution{allMax, uni, opt} {
			if err := p.Verify(s, 1e-6); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}
