package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Energy–deadline trade-off curves. MinEnergy(G, D) is monotone in D, and
// under the Continuous model it is exactly homogeneous: scaling the deadline
// by λ scales the optimal energy by 1/λ² (durations scale linearly, speeds
// by 1/λ, and energy ∝ speed²) as long as smax does not bind. The curve
// utilities make that trade-off a first-class object: "how much energy does
// one more second buy?"

// CurvePoint is one (deadline, energy) sample of the trade-off.
type CurvePoint struct {
	Deadline float64
	Energy   float64
	// Factor is Deadline / Dmin(smax).
	Factor float64
}

// EnergyDeadlineCurve samples the optimal continuous energy at
// D = factor × Dmin(smax) for each factor (all > 1). Factors at or below 1
// are rejected: the curve diverges at the minimal deadline only when smax
// binds, and the all-smax point is returned by factor = 1+ε anyway.
func EnergyDeadlineCurve(g *graph.Graph, smax float64, factors []float64, opts ContinuousOptions) ([]CurvePoint, error) {
	if math.IsInf(smax, 1) {
		return nil, fmt.Errorf("core: curve needs a finite smax (Dmin is 0 otherwise)")
	}
	dmin, err := g.MinimalDeadline(smax)
	if err != nil {
		return nil, err
	}
	points := make([]CurvePoint, 0, len(factors))
	for _, f := range factors {
		if !(f >= 1) {
			return nil, fmt.Errorf("core: curve factor %v below 1", f)
		}
		p, err := NewProblem(g, dmin*f)
		if err != nil {
			return nil, err
		}
		sol, err := p.SolveContinuous(smax, opts)
		if err != nil {
			return nil, err
		}
		points = append(points, CurvePoint{Deadline: dmin * f, Energy: sol.Energy, Factor: f})
	}
	return points, nil
}

// MarginalEnergyRate returns dE/dD estimated by the symmetric difference
// around D — the "price of a second" at that deadline (always ≤ 0: more
// time never costs energy).
func MarginalEnergyRate(g *graph.Graph, smax, deadline, h float64, opts ContinuousOptions) (float64, error) {
	if !(h > 0) {
		return 0, fmt.Errorf("core: step h must be positive, got %v", h)
	}
	solve := func(d float64) (float64, error) {
		p, err := NewProblem(g, d)
		if err != nil {
			return 0, err
		}
		sol, err := p.SolveContinuous(smax, opts)
		if err != nil {
			return 0, err
		}
		return sol.Energy, nil
	}
	lo, err := solve(deadline - h)
	if err != nil {
		return 0, err
	}
	hi, err := solve(deadline + h)
	if err != nil {
		return 0, err
	}
	return (hi - lo) / (2 * h), nil
}

// HomogeneityCheck returns max |E(λD)·λ² − E(D)| / E(D) over the given λ
// values — zero (up to solver tolerance) whenever smax never binds. It is
// the cheap internal-consistency test of the continuous solver that the
// test suite and the experiments both use.
func HomogeneityCheck(g *graph.Graph, baseDeadline float64, lambdas []float64, opts ContinuousOptions) (float64, error) {
	base, err := NewProblem(g, baseDeadline)
	if err != nil {
		return 0, err
	}
	baseSol, err := base.SolveContinuous(math.Inf(1), opts)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, lam := range lambdas {
		if !(lam > 0) {
			return 0, fmt.Errorf("core: λ must be positive, got %v", lam)
		}
		p, err := NewProblem(g, baseDeadline*lam)
		if err != nil {
			return 0, err
		}
		sol, err := p.SolveContinuous(math.Inf(1), opts)
		if err != nil {
			return 0, err
		}
		dev := math.Abs(sol.Energy*lam*lam-baseSol.Energy) / baseSol.Energy
		if dev > worst {
			worst = dev
		}
	}
	return worst, nil
}
