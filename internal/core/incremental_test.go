package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func TestTheorem5BoundFormula(t *testing.T) {
	m, _ := model.NewIncremental(1, 2, 0.5)
	// (1 + 0.5/1)² (1 + 1/2)² = 2.25 · 2.25 = 5.0625.
	if relDiff(Theorem5Bound(m, 2), 5.0625) > 1e-12 {
		t.Fatalf("Theorem5Bound = %v", Theorem5Bound(m, 2))
	}
	if relDiff(Proposition1ContinuousBound(m), 2.25) > 1e-12 {
		t.Fatalf("Prop1 continuous bound = %v", Proposition1ContinuousBound(m))
	}
	dm, _ := model.NewDiscrete([]float64{1, 1.5, 3})
	// α = 1.5, s₁ = 1, K = 3: (1+1.5)²·(4/3)² = 6.25·16/9.
	want := 6.25 * 16.0 / 9.0
	if relDiff(Proposition1DiscreteBound(dm, 3), want) > 1e-12 {
		t.Fatalf("Prop1 discrete bound = %v, want %v", Proposition1DiscreteBound(dm, 3), want)
	}
}

func TestIncrementalApproxFeasibleAndWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		eg := randomExecGraph(t, rng, 8+rng.Intn(6), 3)
		im, _ := model.NewIncremental(0.5, 2, 0.25)
		dmin, _ := eg.MinimalDeadline(2)
		D := dmin * (1.2 + rng.Float64()*2)
		p, _ := NewProblem(eg, D)
		K := 1 + rng.Intn(8)
		sol, err := p.SolveIncrementalApprox(im, K, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(sol, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every speed on the grid.
		speeds, _ := sol.Speeds()
		for i, s := range speeds {
			if !im.Admissible(s, 1e-9) {
				t.Fatalf("trial %d: task %d speed %v off the grid", trial, i, s)
			}
		}
		// The bound is proved against the speed-banded continuous optimum,
		// which lower-bounds the incremental optimum.
		cont, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		bound := Theorem5Bound(im, K)
		if sol.Stats.BoundFactor != bound {
			t.Fatalf("reported bound %v, want %v", sol.Stats.BoundFactor, bound)
		}
		if sol.Energy > cont.Energy*bound*(1+1e-6) {
			t.Fatalf("trial %d (K=%d): approx %v > bound %v × cont %v",
				trial, K, sol.Energy, bound, cont.Energy)
		}
	}
}

func TestIncrementalApproxBeatsBoundTypically(t *testing.T) {
	// The measured ratio should typically be far below the worst-case bound;
	// with a fine grid and large K it should be within a few percent.
	rng := rand.New(rand.NewSource(2))
	eg := randomExecGraph(t, rng, 10, 2)
	im, _ := model.NewIncremental(0.5, 2, 0.05)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*2)
	sol, err := p.SolveIncrementalApprox(im, 64, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ratio := sol.Energy / cont.Energy
	if ratio > 1.25 {
		t.Fatalf("fine-grid ratio %v unexpectedly high", ratio)
	}
	if ratio < 1-1e-6 {
		t.Fatalf("approx %v beat the continuous bound %v", sol.Energy, cont.Energy)
	}
}

func TestIncrementalApproxMonotoneInK(t *testing.T) {
	// Larger K must not give a *worse a-priori bound*; the measured energy
	// usually (not provably) improves too, so only the bound is asserted.
	im, _ := model.NewIncremental(1, 2, 0.25)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16} {
		b := Theorem5Bound(im, k)
		if b > prev {
			t.Fatalf("bound increased with K: %v after %v", b, prev)
		}
		prev = b
	}
}

func TestIncrementalApproxRejectsBadArgs(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 100)
	im, _ := model.NewIncremental(0.5, 2, 0.25)
	if _, err := p.SolveIncrementalApprox(im, 0, ContinuousOptions{}); err == nil {
		t.Fatal("accepted K=0")
	}
	dm, _ := model.NewDiscrete([]float64{1, 2})
	if _, err := p.SolveIncrementalApprox(dm, 2, ContinuousOptions{}); err == nil {
		t.Fatal("accepted non-incremental model")
	}
	cm, _ := model.NewContinuous(2)
	if _, err := p.SolveDiscreteApprox(cm, 2, ContinuousOptions{}); err == nil {
		t.Fatal("discrete approx accepted continuous model")
	}
}

func TestDiscreteApproxWithinProp1Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	modes := []float64{0.5, 0.8, 1.5, 2} // irregular gaps, α = 0.7
	dm, _ := model.NewDiscrete(modes)
	for trial := 0; trial < 5; trial++ {
		eg := randomExecGraph(t, rng, 7+rng.Intn(5), 2)
		dmin, _ := eg.MinimalDeadline(2)
		p, _ := NewProblem(eg, dmin*(1.3+rng.Float64()))
		K := 1 + rng.Intn(6)
		sol, err := p.SolveDiscreteApprox(dm, K, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(sol, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cont, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: modes[0]})
		if err != nil {
			t.Fatal(err)
		}
		bound := Proposition1DiscreteBound(dm, K)
		if sol.Energy > cont.Energy*bound*(1+1e-6) {
			t.Fatalf("trial %d: approx %v > bound %v × cont %v", trial, sol.Energy, bound, cont.Energy)
		}
		// Sanity vs the true discrete optimum when small enough.
		if eg.N() <= 10 {
			exact, err := p.SolveDiscreteBB(dm, DiscreteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Energy < exact.Energy*(1-1e-9) {
				t.Fatalf("approx %v beat the exact optimum %v", sol.Energy, exact.Energy)
			}
			if sol.Energy > exact.Energy*bound*(1+1e-6) {
				t.Fatalf("approx %v > bound %v × exact %v", sol.Energy, bound, exact.Energy)
			}
		}
	}
}

// Proposition 1 bullet 1: the *optimal* incremental energy is within
// (1+δ/smin)² of the continuous optimum. Verified with the exact BB solver.
func TestProp1ContinuousVsIncrementalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		eg := randomExecGraph(t, rng, 6, 2)
		im, _ := model.NewIncremental(0.5, 2, 0.3)
		dmin, _ := eg.MinimalDeadline(2)
		p, _ := NewProblem(eg, dmin*(1.2+rng.Float64()))
		contBanded, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		incOpt, err := p.SolveDiscreteBB(im, DiscreteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bound := Proposition1ContinuousBound(im)
		if incOpt.Energy > contBanded.Energy*bound*(1+1e-6) {
			t.Fatalf("trial %d: incremental optimum %v > (1+δ/smin)² %v × continuous %v",
				trial, incOpt.Energy, bound, contBanded.Energy)
		}
		if incOpt.Energy < contBanded.Energy*(1-1e-6) {
			t.Fatalf("incremental optimum beat the continuous relaxation")
		}
	}
}

// As δ → 0 the incremental optimum converges to the continuous optimum —
// the "arbitrarily efficient" claim of the conclusion.
func TestIncrementalConvergesAsDeltaShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eg := randomExecGraph(t, rng, 6, 2)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*1.8)
	cont, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	prevRatio := math.Inf(1)
	for _, delta := range []float64{0.8, 0.4, 0.2, 0.1} {
		im, _ := model.NewIncremental(0.5, 2, delta)
		sol, err := p.SolveDiscreteBB(im, DiscreteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := sol.Energy / cont.Energy
		if ratio < 1-1e-9 {
			t.Fatalf("δ=%v: ratio %v below 1", delta, ratio)
		}
		if ratio > prevRatio*(1+1e-9) {
			t.Fatalf("δ=%v: ratio %v worse than coarser grid %v", delta, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio > 1.1 {
		t.Fatalf("δ=0.1 ratio still %v; expected near-continuous energy", prevRatio)
	}
}
