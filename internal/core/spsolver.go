package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
)

// The equivalent-weight algebra behind Theorem 2: under the Continuous model
// with unbounded smax, the minimal energy to execute a series-parallel
// (sub)graph within a window of length x is W³/x², where the equivalent
// weight W composes as
//
//	task:      W = wᵢ
//	series:    W = W₁ + W₂          (optimal window split ∝ equivalent weights)
//	parallel:  W = (W₁³ + W₂³)^(1/3) (both children use the full window)
//
// The fork of Theorem 1 is the special case Series(T0, Parallel(T1..Tn)):
// W = w₀ + (Σ wᵢ³)^(1/3), matching the paper's s₀ = W/D. Trees convert to SP
// expressions (graph.TreeToSP), so this one recursion covers chains, forks,
// joins, trees, and all series-parallel execution graphs in O(n).

// EquivalentWeight computes the algebra bottom-up over an SP expression,
// reading task weights from g.
func EquivalentWeight(g *graph.Graph, e *graph.SPExpr) float64 {
	switch e.Kind {
	case graph.SPTask:
		return g.Weight(e.Task)
	case graph.SPSeries:
		sum := 0.0
		for _, c := range e.Children {
			sum += EquivalentWeight(g, c)
		}
		return sum
	default: // SPParallel
		cubes := 0.0
		for _, c := range e.Children {
			w := EquivalentWeight(g, c)
			cubes += w * w * w
		}
		return math.Cbrt(cubes)
	}
}

// assignSPSpeeds walks the expression top-down, splitting the window of
// every series node in proportion to its children's equivalent weights, and
// setting each leaf's speed to (leaf weight)/(its window).
func assignSPSpeeds(g *graph.Graph, e *graph.SPExpr, window float64, speeds []float64) {
	switch e.Kind {
	case graph.SPTask:
		speeds[e.Task] = g.Weight(e.Task) / window
	case graph.SPSeries:
		total := EquivalentWeight(g, e)
		for _, c := range e.Children {
			share := window * EquivalentWeight(g, c) / total
			assignSPSpeeds(g, c, share, speeds)
		}
	default: // SPParallel
		for _, c := range e.Children {
			assignSPSpeeds(g, c, window, speeds)
		}
	}
}

// SolveSPContinuous solves MinEnergy under the Continuous model for an
// execution graph given with its series-parallel decomposition. Per
// Theorem 2 the algebra assumes smax = +∞; when the resulting speeds exceed
// a finite smax the caller should fall back to the numeric solver (the
// dispatcher SolveContinuous does exactly that). An error is returned in
// that case rather than a clamped — and possibly suboptimal — solution.
func (p *Problem) SolveSPContinuous(e *graph.SPExpr, smax float64) (*Solution, error) {
	if e.Size() != p.G.N() {
		return nil, fmt.Errorf("core: SP expression covers %d of %d tasks", e.Size(), p.G.N())
	}
	speeds := make([]float64, p.G.N())
	assignSPSpeeds(p.G, e, p.Deadline, speeds)
	for i, s := range speeds {
		if s > smax*(1+1e-12) {
			return nil, fmt.Errorf("core: SP closed form needs speed %.9g > smax %.9g on task %d (use the numeric solver)", s, smax, i)
		}
	}
	m, err := model.NewContinuous(smax)
	if err != nil {
		return nil, err
	}
	return p.solutionFromSpeeds(m, speeds, Stats{Algorithm: "sp-equivalent-weight", Exact: true, BoundFactor: 1})
}

// SPOptimalEnergy returns the closed-form optimal energy W³/D² of an SP
// expression (smax = ∞).
func (p *Problem) SPOptimalEnergy(e *graph.SPExpr) float64 {
	w := EquivalentWeight(p.G, e)
	return w * w * w / (p.Deadline * p.Deadline)
}

// SolveTreeContinuous recognizes an in- or out-tree, converts it to its SP
// expression, and applies the algebra. Falls back with an error when the
// graph is not a tree or when a finite smax binds.
func (p *Problem) SolveTreeContinuous(smax float64) (*Solution, error) {
	e, ok := graph.TreeToSP(p.G)
	if !ok {
		return nil, fmt.Errorf("core: graph is not an in- or out-tree")
	}
	sol, err := p.SolveSPContinuous(e, smax)
	if err != nil {
		return nil, err
	}
	sol.Stats.Algorithm = "tree-equivalent-weight"
	return sol, nil
}
