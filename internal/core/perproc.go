package core

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/platform"
)

// Extension: per-processor speed scaling. The paper reclaims energy with one
// speed *per task*; real chips often expose one DVFS domain *per processor*
// (all tasks mapped there share the speed) or one per chip (SolveUniform).
// Solving this restricted problem exactly quantifies what task-grained
// control buys — the A1 ablation.
//
// With σ_q the speed of processor q and u_q = 1/σ_q, task i's duration is
// wᵢ·u_{proc(i)}, so the feasible set is linear in (t, u) and the energy
//
//	Σ_i wᵢ·σ_{proc(i)}² = Σ_q W_q / u_q²,  W_q = Σ_{i on q} wᵢ,
//
// is convex in u > 0: the same log-barrier machinery applies with P
// variables instead of n.

// perProcObjective is Σ_q W_q / u_q² over x = (t₁..tₙ, u₁..u_P).
type perProcObjective struct {
	procWeight []float64 // total task weight per processor (normalized)
	n          int
}

func (f *perProcObjective) Value(x linalg.Vector) float64 {
	v := 0.0
	for q, w := range f.procWeight {
		u := x[f.n+q]
		v += w / (u * u)
	}
	return v
}

func (f *perProcObjective) Gradient(x, g linalg.Vector) {
	for i := range g {
		g[i] = 0
	}
	for q, w := range f.procWeight {
		u := x[f.n+q]
		g[f.n+q] = -2 * w / (u * u * u)
	}
}

func (f *perProcObjective) Hessian(x linalg.Vector, h *linalg.Matrix) {
	for q, w := range f.procWeight {
		u := x[f.n+q]
		h.Add(f.n+q, f.n+q, 6*w/(u*u*u*u))
	}
}

func (f *perProcObjective) HessianDiag(x, h linalg.Vector) {
	for i := range h {
		h[i] = 0
	}
	for q, w := range f.procWeight {
		u := x[f.n+q]
		h[f.n+q] = 6 * w / (u * u * u * u)
	}
}

// SolvePerProcessorContinuous finds the optimal single continuous speed per
// processor for the given mapping (which must be the mapping that produced
// p.G). The result is reported as a standard per-task Solution whose tasks
// on one processor share a speed.
func (p *Problem) SolvePerProcessorContinuous(m *platform.Mapping, smax float64, opts ContinuousOptions) (*Solution, error) {
	if !(smax > 0) {
		return nil, model.ErrBadSMax
	}
	if err := m.Validate(p.G); err != nil {
		return nil, err
	}
	if err := p.CheckFeasible(smax); err != nil {
		return nil, err
	}
	n := p.G.N()
	np := m.NumProcs()
	procOf := m.ProcOf()

	cpw, err := p.G.CriticalPathWeight()
	if err != nil {
		return nil, err
	}
	// Normalization as in SolveContinuousNumeric: time unit D, work unit cpw.
	wn := make([]float64, n)
	for i := 0; i < n; i++ {
		wn[i] = p.G.Weight(i) / cpw
	}
	procW := make([]float64, np)
	for i := 0; i < n; i++ {
		procW[procOf[i][0]] += wn[i]
	}
	// Skip processors with no tasks: pin their u to 1 via a dummy bound by
	// giving them zero weight (objective ignores them) and box constraints.
	sCapN := smax * p.Deadline / cpw
	uLo := 1 / sCapN // u ≥ 1/smax (normalized)
	if math.IsInf(smax, 1) {
		// Bound speeds as in the per-task case.
		totalN := 0.0
		minW := math.Inf(1)
		for _, w := range wn {
			totalN += w
			if w < minW {
				minW = w
			}
		}
		uLo = 1 / (4 * math.Sqrt(totalN/minW))
	}

	// Feasible-start scaling, needed below to box idle processors: fastest
	// durations lo give normalized makespan mstar < 1; durations and finish
	// times are inflated by μ = ν = (1/mstar)^(1/3).
	lo := make([]float64, n)
	for i := range lo {
		lo[i] = wn[i] * uLo
	}
	mstar, err := p.G.Makespan(lo)
	if err != nil {
		return nil, err
	}
	if mstar >= 1 {
		return nil, fmt.Errorf("%w: normalized fastest makespan %.9g ≥ 1", ErrInfeasible, mstar)
	}
	lambda := 1 / mstar
	mu := math.Cbrt(lambda)
	nu := math.Cbrt(lambda)

	// Constraints over x = (t, u): edges, start, deadline, uLo ≤ u ≤ uHi.
	// The upper bound exists so idle processors' u (absent from both the
	// objective and the scheduling constraints) cannot drift unboundedly
	// under the barrier; for busy processors it is implied by the deadline
	// and therefore harmless.
	uHi := make([]float64, np)
	wmax := make([]float64, np)
	for i := 0; i < n; i++ {
		q := procOf[i][0]
		if wn[i] > wmax[q] {
			wmax[q] = wn[i]
		}
	}
	edges := p.G.Edges()
	rows := len(edges) + n + n + 2*np
	ab := linalg.NewCSRBuilder(n + np)
	b := linalg.NewVector(rows)
	r := 0
	for _, e := range edges { // t_u + w_v·u_{p(v)} − t_v ≤ 0
		ab.Set(e[0], 1)
		ab.Set(n+procOf[e[1]][0], wn[e[1]])
		ab.Set(e[1], -1)
		ab.EndRow()
		r++
	}
	for i := 0; i < n; i++ { // w_i·u_{p(i)} − t_i ≤ 0
		ab.Set(n+procOf[i][0], wn[i])
		ab.Set(i, -1)
		ab.EndRow()
		r++
	}
	for i := 0; i < n; i++ { // t_i ≤ 1
		ab.Set(i, 1)
		ab.EndRow()
		b[r] = 1
		r++
	}
	for q := 0; q < np; q++ { // −u_q ≤ −uLo
		ab.Set(n+q, -1)
		ab.EndRow()
		b[r] = -uLo
		r++
	}
	for q := 0; q < np; q++ { // u_q ≤ uHi_q
		if wmax[q] > 0 {
			uHi[q] = 1 / wmax[q] // duration w·u ≤ 1 forces this anyway
		} else {
			uHi[q] = 2 * mu * uLo // idle processor: value irrelevant, boxed around x0
		}
		ab.Set(n+q, 1)
		ab.EndRow()
		b[r] = uHi[q]
		r++
	}
	a := ab.Build()

	// Strictly feasible start: all processors slightly slower than smax,
	// finish times stretched, exactly as in the per-task solver.
	d0 := make([]float64, n)
	for i := range d0 {
		d0[i] = mu * lo[i]
	}
	pa, err := p.G.Analyze(d0, 1)
	if err != nil {
		return nil, err
	}
	x0 := linalg.NewVector(n + np)
	for i := 0; i < n; i++ {
		x0[i] = nu * pa.EarliestFinish[i]
	}
	for q := 0; q < np; q++ {
		x0[n+q] = mu * uLo
	}

	tol := opts.Tol
	if tol == 0 {
		tol = 1e-10
	}
	obj := &perProcObjective{procWeight: procW, n: n}
	copts := convex.Options{Tol: tol * math.Max(1, obj.Value(x0))}
	var res *convex.Result
	if opts.DenseKernel {
		res, err = convex.Minimize(obj, a.Dense(), b, x0, copts)
	} else {
		res, err = convex.SparseMinimize(obj, a, b, x0, copts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: per-processor solve failed: %w", err)
	}
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		u := res.X[n+procOf[i][0]]
		s := (1 / u) * cpw / p.Deadline
		if !math.IsInf(smax, 1) && s > smax {
			s = smax
		}
		speeds[i] = s
	}
	mm, err := model.NewContinuous(smax)
	if err != nil {
		return nil, err
	}
	return p.solutionFromSpeeds(mm, speeds, Stats{
		Algorithm:   "per-processor-continuous",
		Newton:      res.Newton,
		Exact:       true,
		BoundFactor: 1,
	})
}
