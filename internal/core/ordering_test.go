package core

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/workload"
)

// Ordering-equivalence suite: nested dissection and RCM must produce the
// same speeds and energy to 1e-9 across workload families and solve
// variants — the ordering only permutes the Newton systems, never the
// optimum. Plus determinism: the parallel kernel is bit-reproducible for
// a fixed worker count.

func TestOrderingEquivalenceAcrossFamilies(t *testing.T) {
	const smax = 2.0
	families := []struct {
		family string
		n      int
		seed   int64
	}{
		{"chain", 40, 21},
		{"fork", 24, 22},
		{"join", 24, 23},
		{"layered", 30, 24},
		{"gnp", 30, 25},
		{"tree", 30, 26},
		{"intree", 30, 27},
		{"sp", 30, 28},
		{"stencil", 5, 29},
		{"pipeline", 8, 30},
		{"mapreduce", 10, 31},
		{"multi", 3, 32},
	}
	variants := []string{"cold", "warm", "release"}
	for _, fc := range families {
		g, err := workload.FromSeed(fc.family, fc.n, fc.seed, 0.5, 3)
		if err != nil {
			t.Fatalf("%s: generate: %v", fc.family, err)
		}
		dmin, err := g.MinimalDeadline(smax)
		if err != nil {
			t.Fatalf("%s: minimal deadline: %v", fc.family, err)
		}
		p, err := NewProblem(g, dmin*1.5)
		if err != nil {
			t.Fatalf("%s: problem: %v", fc.family, err)
		}
		cold, err := p.SolveContinuousNumeric(smax, ContinuousOptions{})
		if err != nil {
			t.Fatalf("%s: cold solve: %v", fc.family, err)
		}
		for _, variant := range variants {
			opts := ContinuousOptions{}
			switch variant {
			case "warm":
				speeds, err := cold.Speeds()
				if err != nil {
					t.Fatalf("%s: speeds: %v", fc.family, err)
				}
				opts.Warm = &WarmStart{Speeds: speeds}
			case "release":
				release := make([]float64, p.G.N())
				for i := range release {
					release[i] = 0.02 * p.Deadline * float64(i%4) / 4
				}
				opts.Release = release
			}
			opts.Ordering = convex.OrderRCM
			rcm, err := p.SolveContinuousNumeric(smax, opts)
			if err != nil {
				t.Fatalf("%s/%s: RCM solve: %v", fc.family, variant, err)
			}
			opts.Ordering = convex.OrderND
			nd, err := p.SolveContinuousNumeric(smax, opts)
			if err != nil {
				t.Fatalf("%s/%s: ND solve: %v", fc.family, variant, err)
			}
			if rel := math.Abs(rcm.Energy-nd.Energy) / math.Max(1, rcm.Energy); rel > 1e-9 {
				t.Errorf("%s/%s: energy RCM %.15g ND %.15g (rel %g)",
					fc.family, variant, rcm.Energy, nd.Energy, rel)
			}
			sr, _ := rcm.Speeds()
			sn, _ := nd.Speeds()
			for i := range sr {
				if d := math.Abs(sr[i]-sn[i]) / math.Max(1, sr[i]); d > 1e-9 {
					t.Errorf("%s/%s: speed[%d] RCM %.15g ND %.15g", fc.family, variant, i, sr[i], sn[i])
				}
			}
		}
	}
}

func TestParallelKernelDeterministicSpeeds(t *testing.T) {
	const smax = 2.0
	g, err := workload.FromSeed("layered", 600, 77, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	dmin, err := g.MinimalDeadline(smax)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, dmin*1.5)
	if err != nil {
		t.Fatal(err)
	}
	opts := ContinuousOptions{Workers: 4}
	a, err := p.SolveContinuousNumeric(smax, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SolveContinuousNumeric(smax, opts)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := a.Speeds()
	sb, _ := b.Speeds()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("speed[%d] not bit-reproducible across runs with fixed workers: %.17g vs %.17g",
				i, sa[i], sb[i])
		}
	}
	// And the parallel optimum agrees with the sequential one to 1e-9.
	serial, err := p.SolveContinuousNumeric(smax, ContinuousOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(serial.Energy-a.Energy) / math.Max(1, serial.Energy); rel > 1e-9 {
		t.Fatalf("parallel energy %.15g vs serial %.15g (rel %g)", a.Energy, serial.Energy, rel)
	}
}

func TestTransitiveRowDedupe(t *testing.T) {
	const smax = 2.0
	// A 10-task chain with every transitive edge added explicitly: 45
	// precedence rows, of which only the 9 chain edges matter. The solver
	// must drop the 36 implied rows and still match the chain closed form.
	n := 10
	gb, err := workload.FromSeed("chain", n, 5, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			gb.MustAddEdge(i, j)
		}
	}
	dmin, err := gb.MinimalDeadline(smax)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(gb, dmin*1.5)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p.SolveContinuousNumeric(smax, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := n*(n-1)/2 - (n - 1); sol.Stats.PrecedenceRowsDropped != want {
		t.Fatalf("PrecedenceRowsDropped = %d, want %d", sol.Stats.PrecedenceRowsDropped, want)
	}
	// The closed form for the underlying chain is the oracle.
	chain, err := workload.FromSeed("chain", n, 5, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewProblem(chain, p.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cp.SolveChainContinuous(smax)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sol.Energy-want.Energy) / math.Max(1, want.Energy); rel > 1e-7 {
		t.Fatalf("deduped energy %.15g vs chain closed form %.15g (rel %g)", sol.Energy, want.Energy, rel)
	}
	// Dense and sparse kernels see the same deduped rows.
	dense, err := p.SolveContinuousNumeric(smax, ContinuousOptions{DenseKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sol.Energy-dense.Energy) / math.Max(1, dense.Energy); rel > 1e-9 {
		t.Fatalf("sparse %.15g vs dense %.15g after dedupe (rel %g)", sol.Energy, dense.Energy, rel)
	}
	if dense.Stats.PrecedenceRowsDropped != sol.Stats.PrecedenceRowsDropped {
		t.Fatalf("dense dropped %d rows, sparse %d", dense.Stats.PrecedenceRowsDropped, sol.Stats.PrecedenceRowsDropped)
	}
}

func TestWarmStartCheaperThanCold(t *testing.T) {
	const smax = 2.0
	g, err := workload.FromSeed("layered", 128, 9, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	dmin, err := g.MinimalDeadline(smax)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, dmin*1.4)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.SolveContinuousNumeric(smax, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	speeds, err := cold.Speeds()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.SolveContinuousNumeric(smax, ContinuousOptions{Warm: &WarmStart{Speeds: speeds}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(warm.Energy-cold.Energy) / math.Max(1, cold.Energy); rel > 1e-9 {
		t.Fatalf("warm energy %.15g vs cold %.15g (rel %g)", warm.Energy, cold.Energy, rel)
	}
	// The point of AutoT0: a warm restart from the optimum must spend
	// strictly less centering work than the cold solve.
	if warm.Stats.Newton >= cold.Stats.Newton {
		t.Fatalf("warm restart took %d Newton iterations, cold took %d — warm start is not paying off",
			warm.Stats.Newton, cold.Stats.Newton)
	}
}
