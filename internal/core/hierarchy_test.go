package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/platform"
)

// The paper's model hierarchy, as one falsifiable statement over random
// instances: for any execution graph, deadline, and mode set,
//
//	E_cont ≤ E_vdd ≤ E_disc-exact ≤ E_greedy
//	E_cont ≤ E_vdd ≤ E_disc-exact ≤ E_round-up ≤ bound·E_cont-banded
//	E_disc-exact(more modes) ≤ E_disc-exact(subset of modes)
//
// plus every solution verifies independently. This is the library's
// strongest single invariant — any solver bug that produces an energy too
// low (infeasible) or too high (suboptimal past a proven bound) trips it.
func TestFullModelHierarchyProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	modes := []float64{0.5, 0.9, 1.4, 2}
	subset := []float64{0.5, 1.4, 2} // modes minus one: optimum can only worsen
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		procs := 1 + rng.Intn(3)
		app := graph.GnpDAG(rng, n, 0.3, graph.UniformWeights(1, 5))
		m, err := platform.ListSchedule(app, procs)
		if err != nil {
			return false
		}
		eg, err := platform.BuildExecutionGraph(app, m)
		if err != nil {
			return false
		}
		dmin, err := eg.MinimalDeadline(2)
		if err != nil {
			return false
		}
		p, err := NewProblem(eg, dmin*(1.1+rng.Float64()*1.5))
		if err != nil {
			return false
		}

		cont, err := p.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			return false
		}
		vm, _ := model.NewVddHopping(modes)
		vdd, err := p.SolveVddHopping(vm)
		if err != nil {
			return false
		}
		dm, _ := model.NewDiscrete(modes)
		exact, err := p.SolveDiscreteBB(dm, DiscreteOptions{})
		if err != nil {
			return false
		}
		greedy, err := p.SolveDiscreteGreedy(dm)
		if err != nil {
			return false
		}
		roundup, err := p.SolveDiscreteRoundUp(dm, ContinuousOptions{})
		if err != nil {
			return false
		}
		sm, _ := model.NewDiscrete(subset)
		exactSubset, err := p.SolveDiscreteBB(sm, DiscreteOptions{})
		if err != nil {
			return false
		}

		const tol = 1 + 1e-6
		if cont.Energy > vdd.Energy*tol {
			return false
		}
		if vdd.Energy > exact.Energy*tol {
			return false
		}
		if exact.Energy > greedy.Energy*tol {
			return false
		}
		if exact.Energy > roundup.Energy*tol {
			return false
		}
		if exact.Energy > exactSubset.Energy*tol {
			return false
		}
		banded, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: modes[0]})
		if err != nil {
			return false
		}
		if roundup.Energy > banded.Energy*roundup.Stats.BoundFactor*tol {
			return false
		}
		for _, sol := range []*Solution{cont, vdd, exact, greedy, roundup, exactSubset} {
			if err := p.Verify(sol, 1e-6); err != nil {
				return false
			}
			if math.IsNaN(sol.Energy) || sol.Energy <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Tightening the deadline can never reduce the optimal energy, for any
// model (the feasible set shrinks).
func TestDeadlineMonotonicityProperty(t *testing.T) {
	modes := []float64{0.6, 1.2, 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		app := graph.GnpDAG(rng, 4+rng.Intn(5), 0.3, graph.UniformWeights(1, 4))
		m, err := platform.ListSchedule(app, 2)
		if err != nil {
			return false
		}
		eg, err := platform.BuildExecutionGraph(app, m)
		if err != nil {
			return false
		}
		dmin, _ := eg.MinimalDeadline(2)
		loose, _ := NewProblem(eg, dmin*3)
		tight, _ := NewProblem(eg, dmin*1.3)

		cL, err := loose.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			return false
		}
		cT, err := tight.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			return false
		}
		if cT.Energy < cL.Energy*(1-1e-6) {
			return false
		}
		dm, _ := model.NewDiscrete(modes)
		dL, err := loose.SolveDiscreteBB(dm, DiscreteOptions{})
		if err != nil {
			return false
		}
		dT, err := tight.SolveDiscreteBB(dm, DiscreteOptions{})
		if err != nil {
			return false
		}
		if dT.Energy < dL.Energy*(1-1e-9) {
			return false
		}
		vm, _ := model.NewVddHopping(modes)
		vL, err := loose.SolveVddHopping(vm)
		if err != nil {
			return false
		}
		vT, err := tight.SolveVddHopping(vm)
		if err != nil {
			return false
		}
		return vT.Energy >= vL.Energy*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Squeezing the same application onto fewer processors adds serialization
// and, on these list-scheduled instances, raises the optimal energy at a
// fixed absolute deadline. (Not a theorem for arbitrary mapping pairs —
// the edge sets are not nested — but a stable regression property of the
// generator + list scheduler at this seed.)
func TestMappingRestrictionMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		app := graph.GnpDAG(rng, 10, 0.2, graph.UniformWeights(1, 4))
		m4, err := platform.ListSchedule(app, 4)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := platform.ListSchedule(app, 2)
		if err != nil {
			t.Fatal(err)
		}
		eg4, err := platform.BuildExecutionGraph(app, m4)
		if err != nil {
			t.Fatal(err)
		}
		eg2, err := platform.BuildExecutionGraph(app, m2)
		if err != nil {
			t.Fatal(err)
		}
		// Same absolute deadline, chosen feasible for both.
		dmin2, _ := eg2.MinimalDeadline(2)
		dmin4, _ := eg4.MinimalDeadline(2)
		D := math.Max(dmin2, dmin4) * 1.5
		p4, _ := NewProblem(eg4, D)
		p2, _ := NewProblem(eg2, D)
		s4, err := p4.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p2.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Fewer processors = more serialization edges = larger optimum.
		if s2.Energy < s4.Energy*(1-1e-5) {
			t.Fatalf("trial %d: 2-proc optimum %v below 4-proc optimum %v",
				trial, s2.Energy, s4.Energy)
		}
	}
}
