package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// Structural properties of optimal Vdd-Hopping solutions. The literature
// (Ishihara–Yasuura) shows a single task meeting a time budget optimally
// mixes at most the two modes bracketing its average speed; at a basic
// optimal solution of the LP the same economy shows up globally: tasks
// overwhelmingly hold one or two speeds, and when they hold two, the two
// are adjacent modes.
func TestVddOptimalSolutionsUseFewAdjacentModes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	modes := []float64{0.4, 0.8, 1.2, 1.6, 2.0}
	vm, _ := model.NewVddHopping(modes)
	adjacency := func(a, b float64) bool {
		// Positions in the mode table must differ by exactly one.
		ia, ib := -1, -1
		for i, s := range modes {
			if math.Abs(s-a) < 1e-9 {
				ia = i
			}
			if math.Abs(s-b) < 1e-9 {
				ib = i
			}
		}
		if ia < 0 || ib < 0 {
			return false
		}
		d := ia - ib
		return d == 1 || d == -1
	}
	totalTasks, multiSpeed := 0, 0
	for trial := 0; trial < 8; trial++ {
		eg := randomExecGraph(t, rng, 10, 3)
		dmin, _ := eg.MinimalDeadline(2)
		p, _ := NewProblem(eg, dmin*(1.2+rng.Float64()))
		sol, err := p.SolveVddHopping(vm)
		if err != nil {
			t.Fatal(err)
		}
		for i, prof := range sol.Schedule.Profiles {
			totalTasks++
			// Collect the distinct speeds with meaningful duration.
			var speeds []float64
			for _, seg := range prof {
				if seg.Duration < 1e-9 {
					continue
				}
				dup := false
				for _, s := range speeds {
					if math.Abs(s-seg.Speed) < 1e-9 {
						dup = true
					}
				}
				if !dup {
					speeds = append(speeds, seg.Speed)
				}
			}
			switch len(speeds) {
			case 0:
				t.Fatalf("trial %d task %d: empty profile", trial, i)
			case 1:
				// Constant speed: fine.
			case 2:
				multiSpeed++
				if !adjacency(speeds[0], speeds[1]) {
					t.Fatalf("trial %d task %d mixes non-adjacent modes %v", trial, i, speeds)
				}
			default:
				// Degenerate LP optima can in principle return >2 speeds for
				// a task; it must remain rare. Count it as multi-speed and
				// let the aggregate check below catch pathologies.
				multiSpeed++
				if len(speeds) > 3 {
					t.Fatalf("trial %d task %d uses %d speeds", trial, i, len(speeds))
				}
			}
		}
	}
	if totalTasks == 0 {
		t.Fatal("no tasks examined")
	}
	// Hopping should be the exception, not the rule: most tasks sit exactly
	// on one mode at a vertex of the LP polytope.
	if multiSpeed > totalTasks/2 {
		t.Fatalf("%d of %d tasks hop — vertex structure lost", multiSpeed, totalTasks)
	}
}

// The LP's reported completion-time witnesses must be consistent with the
// earliest-start schedule the solution carries.
func TestVddScheduleSaturatesDeadlineWhenTight(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	eg := randomExecGraph(t, rng, 8, 2)
	modes := []float64{0.5, 1, 2}
	vm, _ := model.NewVddHopping(modes)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*1.4)
	sol, err := p.SolveVddHopping(vm)
	if err != nil {
		t.Fatal(err)
	}
	// At a deadline above the floor regime, the optimum uses the full
	// window (otherwise some task could run slower and save energy).
	if sol.Schedule.Makespan < p.Deadline*0.999 {
		t.Fatalf("optimal vdd schedule leaves slack: %v < %v", sol.Schedule.Makespan, p.Deadline)
	}
}
