package core

import (
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func openInstance(t *testing.T, family string, n int, seed int64) *graph.Mapped {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.egrf")
	if err := workload.WriteInstanceFile(path, family, n, seed, 0.5, 3); err != nil {
		t.Fatal(err)
	}
	mg, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mg.Close() })
	return mg
}

// The mapped solver must agree with the in-memory planner on every
// family small enough to solve both ways.
func TestSolveMappedContinuousMatchesInMemory(t *testing.T) {
	const smax = 2.0
	cases := []struct {
		family string
		n      int
		seed   int64
	}{
		{"chain", 200, 41},
		{"layered", 48, 42},
		{"gnp", 36, 43},
		{"multi", 4, 44},
		{"mixed", 5, 45}, // chains + layered DAGs: exercises both paths at once
		{"sp", 30, 46},
		{"fork", 20, 47},
	}
	for _, c := range cases {
		mg := openInstance(t, c.family, c.n, c.seed)
		g, err := workload.FromSeed(c.family, c.n, c.seed, 0.5, 3)
		if err != nil {
			t.Fatalf("%s: %v", c.family, err)
		}
		dmin, err := MappedMinimalDeadline(mg, smax)
		if err != nil {
			t.Fatalf("%s: mapped dmin: %v", c.family, err)
		}
		wantDmin, err := g.MinimalDeadline(smax)
		if err != nil {
			t.Fatalf("%s: dmin: %v", c.family, err)
		}
		if rel := math.Abs(dmin-wantDmin) / math.Max(1, wantDmin); rel > 1e-12 {
			t.Errorf("%s: mapped dmin %.15g vs %.15g", c.family, dmin, wantDmin)
		}
		deadline := dmin * 1.5
		res, err := SolveMappedContinuous(mg, deadline, smax, ContinuousOptions{})
		if err != nil {
			t.Fatalf("%s: mapped solve: %v", c.family, err)
		}
		p, err := NewProblem(g, deadline)
		if err != nil {
			t.Fatalf("%s: %v", c.family, err)
		}
		want, err := p.SolveContinuous(smax, ContinuousOptions{})
		if err != nil {
			t.Fatalf("%s: in-memory solve: %v", c.family, err)
		}
		if rel := math.Abs(res.Energy-want.Energy) / math.Max(1, want.Energy); rel > 1e-7 {
			t.Errorf("%s: mapped energy %.15g vs in-memory %.15g (rel %g)",
				c.family, res.Energy, want.Energy, rel)
		}
		if res.Tasks != g.N() || res.Edges != g.M() {
			t.Errorf("%s: dims (%d,%d) vs (%d,%d)", c.family, res.Tasks, res.Edges, g.N(), g.M())
		}
	}
}

// mixed is the classification stress: every fourth component is a
// layered DAG (materialized), the rest are chains (streamed).
func TestSolveMappedContinuousClassification(t *testing.T) {
	const smax = 2.0
	mg := openInstance(t, "mixed", 8, 51)
	dmin, err := MappedMinimalDeadline(mg, smax)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveMappedContinuous(mg, dmin*1.5, smax, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 8 {
		t.Fatalf("Components = %d, want 8", res.Components)
	}
	if res.StreamedChains != 6 {
		t.Fatalf("StreamedChains = %d, want 6 (components 4 and 8 are layered)", res.StreamedChains)
	}
	if res.MaterializedTasks == 0 || res.MaterializedTasks >= res.Tasks {
		t.Fatalf("MaterializedTasks = %d of %d — only the layered parts should materialize",
			res.MaterializedTasks, res.Tasks)
	}
}

func TestSolveMappedContinuousInfeasible(t *testing.T) {
	mg := openInstance(t, "chain", 100, 52)
	dmin, err := MappedMinimalDeadline(mg, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveMappedContinuous(mg, dmin*0.5, 2.0, ContinuousOptions{}); err == nil {
		t.Fatal("infeasible deadline accepted")
	}
}

// The out-of-core contract on a 262144-task chain: the mapped solve
// streams the closed form without materializing anything, so its heap
// traffic must stay far below what merely building the in-memory Graph
// costs. (Peak RSS itself is not observable per-call; allocation volume
// is the portable proxy.)
func TestSolveMappedContinuousHugeChainFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("huge instance in -short mode")
	}
	const n = 262144
	const smax = 2.0
	path := filepath.Join(t.TempDir(), "huge.egrf")
	if err := workload.WriteInstanceFile(path, "chain", n, 61, 0.5, 3); err != nil {
		t.Fatal(err)
	}
	mg, err := graph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()

	allocDelta := func(f func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	var res *MappedResult
	solveAlloc := allocDelta(func() {
		dmin, err := MappedMinimalDeadline(mg, smax)
		if err != nil {
			t.Fatal(err)
		}
		res, err = SolveMappedContinuous(mg, dmin*1.5, smax, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
	})
	if res.Tasks != n || res.StreamedChains != 1 || res.MaterializedTasks != 0 {
		t.Fatalf("huge chain not streamed: %+v", res)
	}
	// Oracle: uniform speed W/D on the whole chain.
	W := mg.TotalWeight()
	D := W / smax * 1.5
	want := W * (W / D) * (W / D)
	if rel := math.Abs(res.Energy-want) / want; rel > 1e-12 {
		t.Fatalf("huge chain energy %.15g vs closed form %.15g (rel %g)", res.Energy, want, rel)
	}

	var g *graph.Graph
	materializeAlloc := allocDelta(func() {
		var err error
		g, err = mg.Graph()
		if err != nil {
			t.Fatal(err)
		}
	})
	if g.N() != n {
		t.Fatal("materialization lost tasks")
	}
	if solveAlloc >= materializeAlloc {
		t.Fatalf("mapped solve allocated %d bytes ≥ materializing the Graph (%d bytes) — not out-of-core",
			solveAlloc, materializeAlloc)
	}
	t.Logf("mapped solve: %d bytes allocated; Graph materialization alone: %d bytes", solveAlloc, materializeAlloc)
}
