package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

func vddModel(t *testing.T, modes ...float64) model.Model {
	t.Helper()
	m, err := model.NewVddHopping(modes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVddSingleTaskMatchesIshiharaYasuura(t *testing.T) {
	// One task, cost 2, deadline 2, modes {0.5, 2}: the required average
	// speed is 1. Optimal: mix the two bracketing modes to fill the deadline
	// exactly: 0.5·x + 2·(2-x) = 2 → x = 4/3 at 0.5, 2/3 at 2.
	// E = 0.125·4/3 + 8·2/3 = 1/6 + 16/3 = 5.5.
	g := graph.New()
	g.AddTask("only", 2)
	p, _ := NewProblem(g, 2)
	sol, err := p.SolveVddHopping(vddModel(t, 0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(sol.Energy, 5.5) > 1e-9 {
		t.Fatalf("vdd energy %v, want 5.5", sol.Energy)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
	// The profile uses exactly the two modes.
	if n := sol.Schedule.Profiles[0].DistinctSpeeds(1e-9); n != 2 {
		t.Fatalf("distinct speeds = %d, want 2", n)
	}
}

func TestVddExactModeNeedsNoHopping(t *testing.T) {
	// Required speed exactly a mode: constant execution is optimal.
	g := graph.New()
	g.AddTask("only", 2)
	p, _ := NewProblem(g, 2) // speed 1 needed
	sol, err := p.SolveVddHopping(vddModel(t, 0.5, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(sol.Energy, 2) > 1e-9 { // w·s² = 2
		t.Fatalf("energy %v, want 2", sol.Energy)
	}
}

func TestVddChainUsesWholeDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Chain(rng, 4, graph.UniformWeights(1, 3))
	dmin, _ := g.MinimalDeadline(2)
	D := dmin * 1.7
	p, _ := NewProblem(g, D)
	sol, err := p.SolveVddHopping(vddModel(t, 0.5, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
	// LP optimum saturates the deadline (convex energy, faster = costlier).
	if sol.Schedule.Makespan < D*0.999 {
		t.Fatalf("vdd leaves slack: %v < %v", sol.Schedule.Makespan, D)
	}
}

func TestVddSandwichedByContinuousAndDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		eg := randomExecGraph(t, rng, 9, 3)
		modes := []float64{0.6, 1.1, 1.7, 2.4}
		dmin, _ := eg.MinimalDeadline(modes[len(modes)-1])
		D := dmin * (1.2 + rng.Float64())
		p, _ := NewProblem(eg, D)

		cont, err := p.SolveContinuous(modes[len(modes)-1], ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		vm, _ := model.NewVddHopping(modes)
		vdd, err := p.SolveVddHopping(vm)
		if err != nil {
			t.Fatal(err)
		}
		dm, _ := model.NewDiscrete(modes)
		disc, err := p.SolveDiscreteBB(dm, DiscreteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The paper's hierarchy: continuous relaxes vdd relaxes discrete.
		if cont.Energy > vdd.Energy*(1+1e-6) {
			t.Fatalf("trial %d: E_cont %v > E_vdd %v", trial, cont.Energy, vdd.Energy)
		}
		if vdd.Energy > disc.Energy*(1+1e-6) {
			t.Fatalf("trial %d: E_vdd %v > E_disc %v", trial, vdd.Energy, disc.Energy)
		}
		if err := p.Verify(vdd, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestVddTwoModeUpperBoundsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		eg := randomExecGraph(t, rng, 8, 2)
		modes := []float64{0.5, 1, 1.5, 2}
		dmin, _ := eg.MinimalDeadline(2)
		D := dmin * (1.3 + rng.Float64())
		p, _ := NewProblem(eg, D)
		vm, _ := model.NewVddHopping(modes)
		lpSol, err := p.SolveVddHopping(vm)
		if err != nil {
			t.Fatal(err)
		}
		twoMode, err := p.SolveVddTwoMode(vm, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(twoMode, 1e-6); err != nil {
			t.Fatalf("two-mode infeasible: %v", err)
		}
		if lpSol.Energy > twoMode.Energy*(1+1e-6) {
			t.Fatalf("trial %d: LP %v above two-mode heuristic %v", trial, lpSol.Energy, twoMode.Energy)
		}
		// Every two-mode profile uses at most 2 distinct speeds.
		for i, prof := range twoMode.Schedule.Profiles {
			if prof.DistinctSpeeds(1e-9) > 2 {
				t.Fatalf("task %d uses %d speeds", i, prof.DistinctSpeeds(1e-9))
			}
		}
	}
}

func TestVddInfeasible(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 1) // cpw 8, top mode 2 → dmin 4
	if _, err := p.SolveVddHopping(vddModel(t, 1, 2)); err == nil {
		t.Fatal("accepted infeasible vdd instance")
	}
}

func TestVddWrongKind(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 100)
	dm, _ := model.NewDiscrete([]float64{1, 2})
	if _, err := p.SolveVddHopping(dm); err == nil {
		t.Fatal("accepted discrete model")
	}
	cm, _ := model.NewContinuous(2)
	if _, err := p.SolveVddTwoMode(cm, ContinuousOptions{}); err == nil {
		t.Fatal("accepted continuous model")
	}
}

func TestVddDistinctSpeedStats(t *testing.T) {
	g := graph.New()
	g.AddTask("only", 2)
	p, _ := NewProblem(g, 2)
	sol, err := p.SolveVddHopping(vddModel(t, 0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	stats := VddDistinctSpeedStats(sol, 1e-9)
	if stats[2] != 1 {
		t.Fatalf("stats = %v, want one 2-speed task", stats)
	}
}

// Property: Vdd-Hopping can always emulate the continuous optimum arbitrarily
// well when modes are dense around the needed speeds, so with a fine mode
// grid E_vdd/E_cont stays within a few percent.
func TestVddApproachesContinuousWithDenseModes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eg := randomExecGraph(t, rng, 8, 2)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*1.5)
	cont, err := p.SolveContinuous(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var modes []float64
	for s := 0.2; s <= 2.0001; s += 0.1 {
		modes = append(modes, s)
	}
	vm, _ := model.NewVddHopping(modes)
	vdd, err := p.SolveVddHopping(vm)
	if err != nil {
		t.Fatal(err)
	}
	ratio := vdd.Energy / cont.Energy
	if ratio < 1-1e-6 || ratio > 1.05 {
		t.Fatalf("vdd/cont ratio = %v, want within [1, 1.05]", ratio)
	}
	if math.IsNaN(ratio) {
		t.Fatal("NaN ratio")
	}
}
