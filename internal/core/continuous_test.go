package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// --- Theorem 1: chains and forks ---

func TestChainClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Chain(rng, 5, graph.UniformWeights(1, 4))
	D := g.TotalWeight() / 1.5 // uniform speed 1.5
	p, _ := NewProblem(g, D)
	sol, err := p.SolveChainContinuous(2)
	if err != nil {
		t.Fatal(err)
	}
	speeds, _ := sol.Speeds()
	for _, s := range speeds {
		if relDiff(s, 1.5) > 1e-12 {
			t.Fatalf("chain speed %v, want 1.5", s)
		}
	}
	wantE := math.Pow(g.TotalWeight(), 3) / (D * D)
	if relDiff(sol.Energy, wantE) > 1e-12 {
		t.Fatalf("chain energy %v, want %v", sol.Energy, wantE)
	}
	if err := p.Verify(sol, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Infeasible when the needed speed exceeds smax.
	if _, err := p.SolveChainContinuous(1.4); err == nil {
		t.Fatal("accepted infeasible chain")
	}
	// Non-chain input rejected.
	pd, _ := NewProblem(diamondGraph(), 100)
	if _, err := pd.SolveChainContinuous(2); err == nil {
		t.Fatal("diamond accepted as chain")
	}
}

func TestChainMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Chain(rng, 7, graph.UniformWeights(1, 3))
	D := g.TotalWeight() / 1.2
	p, _ := NewProblem(g, D)
	closed, err := p.SolveChainContinuous(2)
	if err != nil {
		t.Fatal(err)
	}
	numeric, err := p.SolveContinuousNumeric(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(closed.Energy, numeric.Energy) > 1e-5 {
		t.Fatalf("chain closed %v vs numeric %v", closed.Energy, numeric.Energy)
	}
}

func TestForkTheorem1UnsaturatedBranch(t *testing.T) {
	// Fork with generous smax: Theorem 1 formulas verbatim.
	g := graph.New()
	g.AddTask("T0", 2)
	leaves := []float64{1, 3, 4}
	for i, w := range leaves {
		g.AddTask("", w)
		g.MustAddEdge(0, i+1)
	}
	D := 5.0
	p, _ := NewProblem(g, D)
	sol, err := p.SolveForkContinuous(100)
	if err != nil {
		t.Fatal(err)
	}
	sumCubes := 1.0 + 27 + 64
	croot := math.Cbrt(sumCubes)
	s0 := (croot + 2) / D
	speeds, _ := sol.Speeds()
	if relDiff(speeds[0], s0) > 1e-12 {
		t.Fatalf("s0 = %v, want %v", speeds[0], s0)
	}
	for i, w := range leaves {
		want := s0 * w / croot
		if relDiff(speeds[i+1], want) > 1e-12 {
			t.Fatalf("s%d = %v, want %v", i+1, speeds[i+1], want)
		}
	}
	oracle, err := ForkOptimalEnergy(2, leaves, D, 100)
	if err != nil || relDiff(sol.Energy, oracle) > 1e-12 {
		t.Fatalf("energy %v vs oracle %v (%v)", sol.Energy, oracle, err)
	}
	if err := p.Verify(sol, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestForkTheorem1SaturatedBranch(t *testing.T) {
	// smax low enough that s0 > smax: source runs at smax, leaves share D'.
	g := graph.New()
	g.AddTask("T0", 2)
	leaves := []float64{1, 3, 4}
	for i, w := range leaves {
		g.AddTask("", w)
		g.MustAddEdge(0, i+1)
	}
	D := 5.0
	smax := 1.3 // s0 unconstrained ≈ 1.225... pick just below
	// Unconstrained s0 = (cbrt(92)+2)/5 ≈ 1.304 > 1.3 → saturated.
	p, _ := NewProblem(g, D)
	sol, err := p.SolveForkContinuous(smax)
	if err != nil {
		t.Fatal(err)
	}
	speeds, _ := sol.Speeds()
	if relDiff(speeds[0], smax) > 1e-12 {
		t.Fatalf("saturated source speed %v, want smax %v", speeds[0], smax)
	}
	dprime := D - 2/smax
	for i, w := range leaves {
		if relDiff(speeds[i+1], w/dprime) > 1e-12 {
			t.Fatalf("leaf %d speed %v, want %v", i, speeds[i+1], w/dprime)
		}
	}
	if err := p.Verify(sol, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Fully infeasible: even smax can't finish source in time.
	p2, _ := NewProblem(g.Clone(), 0.1)
	if _, err := p2.SolveForkContinuous(smax); err == nil {
		t.Fatal("accepted infeasible fork")
	}
}

func TestForkMatchesNumericBothBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		g := graph.Fork(rng, 2+rng.Intn(6), graph.UniformWeights(1, 5))
		dmin, _ := g.MinimalDeadline(2)
		// Mix tight and loose deadlines to hit both Theorem 1 branches.
		D := dmin * (1.02 + rng.Float64()*3)
		p, _ := NewProblem(g, D)
		closed, err := p.SolveForkContinuous(2)
		if err != nil {
			t.Fatal(err)
		}
		numeric, err := p.SolveContinuousNumeric(2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(closed.Energy, numeric.Energy) > 2e-4 {
			t.Fatalf("trial %d: closed %v vs numeric %v (D=%v dmin=%v)",
				trial, closed.Energy, numeric.Energy, D, dmin)
		}
		if closed.Energy > numeric.Energy*(1+1e-6) {
			t.Fatalf("trial %d: closed form worse than numeric", trial)
		}
	}
}

// --- Theorem 2: trees and series-parallel graphs ---

func TestEquivalentWeightAlgebra(t *testing.T) {
	g := graph.New()
	g.AddTask("", 2) // 0
	g.AddTask("", 1) // 1
	g.AddTask("", 3) // 2
	// Series(0, Parallel(1, 2)): W = 2 + (1+27)^(1/3).
	e := graph.SPSeriesOf(graph.SPLeaf(0), graph.SPParallelOf(graph.SPLeaf(1), graph.SPLeaf(2)))
	want := 2 + math.Cbrt(28)
	if got := EquivalentWeight(g, e); relDiff(got, want) > 1e-12 {
		t.Fatalf("W = %v, want %v", got, want)
	}
}

func TestSPSolveForkShape(t *testing.T) {
	// The SP solver on a fork must reproduce Theorem 1 (smax = ∞).
	g := graph.New()
	g.AddTask("T0", 2)
	leaves := []float64{1, 3, 4}
	children := []*graph.SPExpr{}
	for i, w := range leaves {
		g.AddTask("", w)
		g.MustAddEdge(0, i+1)
		children = append(children, graph.SPLeaf(i+1))
	}
	e := graph.SPSeriesOf(graph.SPLeaf(0), graph.SPParallelOf(children...))
	D := 5.0
	p, _ := NewProblem(g, D)
	sol, err := p.SolveSPContinuous(e, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := ForkOptimalEnergy(2, leaves, D, math.Inf(1))
	if relDiff(sol.Energy, oracle) > 1e-12 {
		t.Fatalf("SP fork energy %v vs Theorem 1 %v", sol.Energy, oracle)
	}
	if relDiff(sol.Energy, p.SPOptimalEnergy(e)) > 1e-12 {
		t.Fatal("SPOptimalEnergy disagrees with assigned speeds")
	}
}

func TestSPRejectsWhenSmaxBinds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, e := graph.RandomSP(rng, 8, graph.UniformWeights(1, 4))
	dmin, _ := g.MinimalDeadline(1)
	p, _ := NewProblem(g, dmin*1.01) // very tight: algebra speeds exceed smax=1
	if _, err := p.SolveSPContinuous(e, 1); err == nil {
		t.Fatal("SP closed form should refuse when smax binds")
	}
	// The dispatcher falls back to numeric and still solves it.
	sol, err := p.SolveContinuous(1, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
}

// Property: on random SP graphs with loose smax, the equivalent-weight
// algebra matches the interior-point solver.
func TestSPMatchesNumericProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g, e := graph.RandomSP(rng, n, graph.UniformWeights(1, 5))
		dmin, _ := g.MinimalDeadline(2)
		D := dmin * (1.5 + rng.Float64()*2)
		p, err := NewProblem(g, D)
		if err != nil {
			return false
		}
		closed, err := p.SolveSPContinuous(e, math.Inf(1))
		if err != nil {
			// smax=∞ never binds; only tight numerical corner cases allowed.
			return false
		}
		numeric, err := p.SolveContinuousNumeric(math.Inf(1), ContinuousOptions{})
		if err != nil {
			return false
		}
		return relDiff(closed.Energy, numeric.Energy) < 5e-4 &&
			closed.Energy <= numeric.Energy*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSolveMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, build := range []func() *graph.Graph{
		func() *graph.Graph { return graph.RandomOutTree(rng, 9, graph.UniformWeights(1, 4)) },
		func() *graph.Graph { return graph.RandomInTree(rng, 9, graph.UniformWeights(1, 4)) },
	} {
		g := build()
		dmin, _ := g.MinimalDeadline(3)
		D := dmin * 2.5
		p, _ := NewProblem(g, D)
		closed, err := p.SolveTreeContinuous(math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		numeric, err := p.SolveContinuousNumeric(math.Inf(1), ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(closed.Energy, numeric.Energy) > 5e-4 {
			t.Fatalf("tree closed %v vs numeric %v", closed.Energy, numeric.Energy)
		}
		if err := p.Verify(closed, 1e-6); err != nil {
			t.Fatal(err)
		}
	}
	pd, _ := NewProblem(diamondGraph(), 100)
	if _, err := pd.SolveTreeContinuous(2); err == nil {
		t.Fatal("diamond accepted as tree")
	}
}

// --- The general numeric solver ---

func TestNumericOnArbitraryDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	eg := randomExecGraph(t, rng, 15, 3)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*1.8)
	sol, err := p.SolveContinuousNumeric(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Newton == 0 {
		t.Fatal("expected Newton iterations to be reported")
	}
	// The deadline should be (nearly) saturated: with a convex increasing
	// cost in speed, the optimum uses all available time.
	if sol.Schedule.Makespan < p.Deadline*0.999 {
		t.Fatalf("optimum leaves slack: makespan %v, deadline %v", sol.Schedule.Makespan, p.Deadline)
	}
}

func TestNumericTightDeadlineShortcut(t *testing.T) {
	g := diamondGraph()
	dmin, _ := g.MinimalDeadline(2)
	p, _ := NewProblem(g, dmin)
	sol, err := p.SolveContinuousNumeric(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	speeds, _ := sol.Speeds()
	for _, s := range speeds {
		if s != 2 {
			t.Fatalf("tight deadline should force smax, got %v", s)
		}
	}
}

func TestNumericInfeasible(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 1)
	if _, err := p.SolveContinuousNumeric(2, ContinuousOptions{}); err == nil {
		t.Fatal("accepted infeasible instance")
	}
}

func TestNumericRejectsBadBounds(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 10)
	if _, err := p.SolveContinuousNumeric(0, ContinuousOptions{}); err == nil {
		t.Fatal("accepted smax=0")
	}
	if _, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: 3}); err == nil {
		t.Fatal("accepted smin > smax")
	}
}

func TestNumericWithSMinBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eg := randomExecGraph(t, rng, 10, 2)
	dmin, _ := eg.MinimalDeadline(2)
	p, _ := NewProblem(eg, dmin*3)
	free, err := p.SolveContinuousNumeric(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	banded, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	speeds, _ := banded.Speeds()
	for i, s := range speeds {
		if s < 1-1e-9 || s > 2+1e-9 {
			t.Fatalf("task %d speed %v outside [1,2]", i, s)
		}
	}
	// Restricting the feasible set cannot reduce energy.
	if banded.Energy < free.Energy*(1-1e-6) {
		t.Fatalf("banded %v beats free %v", banded.Energy, free.Energy)
	}
	// Degenerate band smin == smax.
	deg, err := p.SolveContinuousNumeric(2, ContinuousOptions{SMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	dspeeds, _ := deg.Speeds()
	for _, s := range dspeeds {
		if s != 2 {
			t.Fatalf("degenerate band speed %v, want 2", s)
		}
	}
}

// Scale invariance: scaling all weights by c and D by c leaves speeds
// unchanged and scales energy by c.
func TestNumericScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	eg := randomExecGraph(t, rng, 10, 2)
	dmin, _ := eg.MinimalDeadline(2)
	D := dmin * 2
	p1, _ := NewProblem(eg, D)
	s1, err := p1.SolveContinuousNumeric(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const c = 1000.0
	eg2 := eg.Clone()
	for i := 0; i < eg2.N(); i++ {
		eg2.SetWeight(i, eg2.Weight(i)*c)
	}
	p2, _ := NewProblem(eg2, D*c)
	s2, err := p2.SolveContinuousNumeric(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(s1.Energy*c, s2.Energy) > 1e-6 {
		t.Fatalf("scale invariance broken: %v vs %v/%v", s1.Energy, s2.Energy, c)
	}
}

func TestDispatcherPicksClosedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	chain := graph.Chain(rng, 6, graph.UniformWeights(1, 3))
	p, _ := NewProblem(chain, chain.TotalWeight())
	sol, err := p.SolveContinuous(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Algorithm != "chain-closed-form" {
		t.Fatalf("dispatcher used %q for a chain", sol.Stats.Algorithm)
	}
	fork := graph.Fork(rng, 5, graph.UniformWeights(1, 3))
	dmin, _ := fork.MinimalDeadline(2)
	pf, _ := NewProblem(fork, dmin*2)
	solF, err := pf.SolveContinuous(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if solF.Stats.Algorithm != "fork-closed-form" {
		t.Fatalf("dispatcher used %q for a fork", solF.Stats.Algorithm)
	}
	tree := graph.RandomOutTree(rng, 10, graph.UniformWeights(1, 3))
	dminT, _ := tree.MinimalDeadline(2)
	pt, _ := NewProblem(tree, dminT*4)
	solT, err := pt.SolveContinuous(2, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if solT.Stats.Algorithm != "tree-equivalent-weight" {
		t.Fatalf("dispatcher used %q for a tree", solT.Stats.Algorithm)
	}
	// An SP-decomposable DAG that is not a tree.
	spg, _ := graph.RandomSP(rng, 9, graph.UniformWeights(1, 3))
	if _, ok := graph.TreeToSP(spg); !ok {
		dminS, _ := spg.MinimalDeadline(2)
		ps, _ := NewProblem(spg, dminS*4)
		solS, err := ps.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if solS.Stats.Algorithm != "sp-equivalent-weight" {
			t.Fatalf("dispatcher used %q for an SP graph", solS.Stats.Algorithm)
		}
	}
	// General DAG → numeric.
	eg := randomExecGraph(t, rand.New(rand.NewSource(10)), 12, 3)
	if _, ok := graph.DecomposeSP(eg); !ok {
		dminG, _ := eg.MinimalDeadline(2)
		pg, _ := NewProblem(eg, dminG*2)
		solG, err := pg.SolveContinuous(2, ContinuousOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if solG.Stats.Algorithm != "continuous-interior-point" &&
			solG.Stats.Algorithm != "sp-equivalent-weight" {
			t.Fatalf("dispatcher used %q for a general DAG", solG.Stats.Algorithm)
		}
	}
}
