package core

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/model"
)

// Extension: generalized power exponent. The paper (following its citations
// [4, 5]) fixes dynamic power to s³; the wider DVFS literature models it as
// s^α with α ∈ (1, 3]. Every continuous-model structure of the paper
// survives the generalization:
//
//   - a task of cost w at speed s burns w·s^(α-1);
//   - a chain runs at one speed, with energy W^α/D^(α-1);
//   - the series composition still splits the window in proportion to
//     equivalent weights (the first-order condition W₁/y = W₂/(x-y) is
//     α-independent), so series weights still add;
//   - the parallel composition becomes W = (W₁^α + W₂^α)^(1/α);
//   - the fork optimum becomes s₀ = ((Σwᵢ^α)^(1/α) + w₀)/D.
//
// These solvers are the ablation substrate for the "does α matter?"
// experiment (A2); they deliberately return a lean AlphaSolution rather than
// a Schedule because the sched package accounts energy at the paper's fixed
// α = 3.

// AlphaSolution is a continuous-model solution under power s^alpha.
type AlphaSolution struct {
	Alpha    float64
	Speeds   []float64
	Energy   float64 // Σ wᵢ·sᵢ^(α-1)
	Makespan float64
	Stats    Stats
}

// AlphaTaskEnergy returns w·s^(α-1), the generalized task energy.
func AlphaTaskEnergy(w, s, alpha float64) float64 {
	if s <= 0 {
		if w == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return w * math.Pow(s, alpha-1)
}

func checkAlpha(alpha float64) error {
	if !(alpha > 1) || math.IsInf(alpha, 1) {
		return fmt.Errorf("core: power exponent α must be finite and > 1, got %v", alpha)
	}
	return nil
}

// EquivalentWeightAlpha generalizes the Theorem 2 algebra to power s^α.
func EquivalentWeightAlpha(g *graph.Graph, e *graph.SPExpr, alpha float64) float64 {
	switch e.Kind {
	case graph.SPTask:
		return g.Weight(e.Task)
	case graph.SPSeries:
		sum := 0.0
		for _, c := range e.Children {
			sum += EquivalentWeightAlpha(g, c, alpha)
		}
		return sum
	default: // SPParallel
		pow := 0.0
		for _, c := range e.Children {
			w := EquivalentWeightAlpha(g, c, alpha)
			pow += math.Pow(w, alpha)
		}
		return math.Pow(pow, 1/alpha)
	}
}

func assignAlphaSpeeds(g *graph.Graph, e *graph.SPExpr, window, alpha float64, speeds []float64) {
	switch e.Kind {
	case graph.SPTask:
		speeds[e.Task] = g.Weight(e.Task) / window
	case graph.SPSeries:
		total := EquivalentWeightAlpha(g, e, alpha)
		for _, c := range e.Children {
			share := window * EquivalentWeightAlpha(g, c, alpha) / total
			assignAlphaSpeeds(g, c, share, alpha, speeds)
		}
	default:
		for _, c := range e.Children {
			assignAlphaSpeeds(g, c, window, alpha, speeds)
		}
	}
}

// SolveSPContinuousAlpha solves the continuous model with power s^α on a
// series-parallel execution graph (smax = ∞), in O(n·depth).
func (p *Problem) SolveSPContinuousAlpha(e *graph.SPExpr, alpha float64) (*AlphaSolution, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if e.Size() != p.G.N() {
		return nil, fmt.Errorf("core: SP expression covers %d of %d tasks", e.Size(), p.G.N())
	}
	speeds := make([]float64, p.G.N())
	assignAlphaSpeeds(p.G, e, p.Deadline, alpha, speeds)
	return p.alphaSolutionFromSpeeds(speeds, alpha, Stats{Algorithm: "sp-equivalent-weight-alpha", Exact: true, BoundFactor: 1})
}

// SPOptimalEnergyAlpha returns the closed-form optimum W^α / D^(α-1).
func (p *Problem) SPOptimalEnergyAlpha(e *graph.SPExpr, alpha float64) float64 {
	w := EquivalentWeightAlpha(p.G, e, alpha)
	return math.Pow(w, alpha) / math.Pow(p.Deadline, alpha-1)
}

// alphaEnergyObjective is Σ wᵢ^α / dᵢ^(α-1) over x = (t, d).
type alphaEnergyObjective struct {
	w     []float64
	n     int
	alpha float64
}

func (f *alphaEnergyObjective) Value(x linalg.Vector) float64 {
	v := 0.0
	for i := 0; i < f.n; i++ {
		v += math.Pow(f.w[i], f.alpha) / math.Pow(x[f.n+i], f.alpha-1)
	}
	return v
}

func (f *alphaEnergyObjective) Gradient(x, g linalg.Vector) {
	for i := 0; i < f.n; i++ {
		g[i] = 0
	}
	a := f.alpha
	for i := 0; i < f.n; i++ {
		g[f.n+i] = -(a - 1) * math.Pow(f.w[i], a) / math.Pow(x[f.n+i], a)
	}
}

func (f *alphaEnergyObjective) Hessian(x linalg.Vector, h *linalg.Matrix) {
	a := f.alpha
	for i := 0; i < f.n; i++ {
		h.Add(f.n+i, f.n+i, a*(a-1)*math.Pow(f.w[i], a)/math.Pow(x[f.n+i], a+1))
	}
}

func (f *alphaEnergyObjective) HessianDiag(x, h linalg.Vector) {
	for i := 0; i < f.n; i++ {
		h[i] = 0
	}
	a := f.alpha
	for i := 0; i < f.n; i++ {
		h[f.n+i] = a * (a - 1) * math.Pow(f.w[i], a) / math.Pow(x[f.n+i], a+1)
	}
}

// SolveContinuousNumericAlpha solves the generalized geometric program on an
// arbitrary execution graph with speeds in (0, smax].
func (p *Problem) SolveContinuousNumericAlpha(smax, alpha float64, opts ContinuousOptions) (*AlphaSolution, error) {
	if err := checkAlpha(alpha); err != nil {
		return nil, err
	}
	if !(smax > 0) {
		return nil, model.ErrBadSMax
	}
	if err := p.CheckFeasible(smax); err != nil {
		return nil, err
	}
	n := p.G.N()
	cpw, err := p.G.CriticalPathWeight()
	if err != nil {
		return nil, err
	}
	wn := make([]float64, n)
	for i := 0; i < n; i++ {
		wn[i] = p.G.Weight(i) / cpw
	}
	sCap := smax * p.Deadline / cpw
	if math.IsInf(smax, 1) {
		// Same argument as the α = 3 solver: wᵢ·sᵢ^(α-1) ≤ E* ≤
		// Σwⱼ·(cpw/D)^(α-1) bounds every optimal speed.
		totalN := 0.0
		minW := math.Inf(1)
		for _, w := range wn {
			totalN += w
			if w < minW {
				minW = w
			}
		}
		sCap = 4 * math.Pow(totalN/minW, 1/(alpha-1))
	}
	edges := p.G.Edges()
	rows := len(edges) + 3*n
	ab := linalg.NewCSRBuilder(2 * n)
	b := linalg.NewVector(rows)
	r := 0
	for _, e := range edges {
		ab.Set(e[0], 1)
		ab.Set(n+e[1], 1)
		ab.Set(e[1], -1)
		ab.EndRow()
		r++
	}
	for i := 0; i < n; i++ {
		ab.Set(n+i, 1)
		ab.Set(i, -1)
		ab.EndRow()
		r++
	}
	for i := 0; i < n; i++ {
		ab.Set(i, 1)
		ab.EndRow()
		b[r] = 1
		r++
	}
	lo := make([]float64, n)
	for i := 0; i < n; i++ {
		lo[i] = wn[i] / sCap
		ab.Set(n+i, -1)
		ab.EndRow()
		b[r] = -lo[i]
		r++
	}
	a := ab.Build()
	mstar, err := p.G.Makespan(lo)
	if err != nil {
		return nil, err
	}
	if mstar >= 1 {
		return nil, fmt.Errorf("%w: normalized fastest makespan %.9g ≥ 1", ErrInfeasible, mstar)
	}
	lambda := 1 / mstar
	mu := math.Cbrt(lambda)
	nu := math.Cbrt(lambda)
	d0 := make([]float64, n)
	for i := range d0 {
		d0[i] = mu * lo[i]
	}
	pa, err := p.G.Analyze(d0, 1)
	if err != nil {
		return nil, err
	}
	x0 := linalg.NewVector(2 * n)
	for i := 0; i < n; i++ {
		x0[i] = nu * pa.EarliestFinish[i]
		x0[n+i] = d0[i]
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-10
	}
	obj := &alphaEnergyObjective{w: wn, n: n, alpha: alpha}
	copts := convex.Options{Tol: tol * math.Max(1, obj.Value(x0))}
	var res *convex.Result
	if opts.DenseKernel {
		res, err = convex.Minimize(obj, a.Dense(), b, x0, copts)
	} else {
		res, err = convex.SparseMinimize(obj, a, b, x0, copts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: α-continuous solve failed: %w", err)
	}
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		speeds[i] = (wn[i] / res.X[n+i]) * cpw / p.Deadline
		if !math.IsInf(smax, 1) && speeds[i] > smax {
			speeds[i] = smax
		}
	}
	return p.alphaSolutionFromSpeeds(speeds, alpha, Stats{
		Algorithm: "continuous-interior-point-alpha", Newton: res.Newton, Exact: true, BoundFactor: 1,
	})
}

// alphaSolutionFromSpeeds computes the generalized energy and validates
// feasibility against the deadline.
func (p *Problem) alphaSolutionFromSpeeds(speeds []float64, alpha float64, st Stats) (*AlphaSolution, error) {
	n := p.G.N()
	durations := make([]float64, n)
	energy := 0.0
	for i := 0; i < n; i++ {
		if !(speeds[i] > 0) {
			return nil, fmt.Errorf("core: task %d has non-positive speed %v", i, speeds[i])
		}
		durations[i] = p.G.Weight(i) / speeds[i]
		energy += AlphaTaskEnergy(p.G.Weight(i), speeds[i], alpha)
	}
	ms, err := p.G.Makespan(durations)
	if err != nil {
		return nil, err
	}
	if ms > p.Deadline*(1+1e-6) {
		return nil, fmt.Errorf("%w: α-solution makespan %.9g > %.9g", ErrInfeasible, ms, p.Deadline)
	}
	return &AlphaSolution{Alpha: alpha, Speeds: speeds, Energy: energy, Makespan: ms, Stats: st}, nil
}
