package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

// Error-path and boundary coverage for the solver entry points.

func TestForkOptimalEnergyBranches(t *testing.T) {
	// Unsaturated: matches the fork solver.
	e, err := ForkOptimalEnergy(2, []float64{1, 3, 4}, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	croot := math.Cbrt(1 + 27 + 64)
	s0 := (croot + 2) / 5
	if relDiff(e, (2+croot)*s0*s0) > 1e-12 {
		t.Fatalf("unsaturated oracle = %v", e)
	}
	// Saturated: source clamped at smax.
	eSat, err := ForkOptimalEnergy(2, []float64{1, 3, 4}, 5, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if eSat <= e {
		t.Fatalf("saturated energy %v should exceed unsaturated %v", eSat, e)
	}
	// Source alone busts the deadline.
	if _, err := ForkOptimalEnergy(10, []float64{1}, 1, 2); err == nil {
		t.Fatal("accepted impossible source")
	}
	// A leaf busts the remaining window.
	if _, err := ForkOptimalEnergy(1, []float64{100}, 1.2, 5); err == nil {
		t.Fatal("accepted impossible leaf")
	}
}

func TestVddTwoModeClampsSlowTasks(t *testing.T) {
	// A very loose deadline pushes continuous speeds below the slowest mode;
	// the two-mode heuristic must clamp to smin and stay feasible.
	rng := rand.New(rand.NewSource(1))
	g := graph.Chain(rng, 4, graph.UniformWeights(1, 2))
	dmin, _ := g.MinimalDeadline(2)
	p, _ := NewProblem(g, dmin*20)
	vm, _ := model.NewVddHopping([]float64{0.5, 1, 2})
	sol, err := p.SolveVddTwoMode(vm, ContinuousOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(sol, 1e-6); err != nil {
		t.Fatal(err)
	}
	// All tasks should sit at the bottom mode, constant speed.
	for i, prof := range sol.Schedule.Profiles {
		if len(prof) != 1 || prof[0].Speed != 0.5 {
			t.Fatalf("task %d profile %v, want constant 0.5", i, prof)
		}
	}
	// And the energy hits the floor exactly.
	if relDiff(sol.Energy, g.TotalWeight()*0.25) > 1e-9 {
		t.Fatalf("floor energy %v, want %v", sol.Energy, g.TotalWeight()*0.25)
	}
}

func TestDiscreteSPFrontierLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, e := graph.RandomSP(rng, 20, graph.UniformWeights(1, 5))
	dmin, _ := g.MinimalDeadline(2)
	p, _ := NewProblem(g, dmin*1.5)
	im, _ := model.NewIncremental(0.25, 2, 0.05) // 36 modes: frontier blows past 3
	_, err := p.SolveDiscreteSP(im, e, DiscreteOptions{MaxFrontier: 3})
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("expected ErrSearchLimit, got %v", err)
	}
}

func TestCurveRejectsInfiniteSmax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Chain(rng, 3, graph.ConstantWeights(1))
	if _, err := EnergyDeadlineCurve(g, math.Inf(1), []float64{2}, ContinuousOptions{}); err == nil {
		t.Fatal("accepted infinite smax for a Dmin-relative curve")
	}
}

func TestCurveAndRatePropagateInfeasibility(t *testing.T) {
	g := graph.New()
	g.AddTask("x", 1)
	// MarginalEnergyRate at a deadline whose lower sample is infeasible.
	if _, err := MarginalEnergyRate(g, 1, 1.0, 0.5, ContinuousOptions{}); err == nil {
		t.Fatal("accepted infeasible lower sample")
	}
}

func TestHomogeneityPropagatesErrors(t *testing.T) {
	g := graph.New()
	g.AddTask("x", 1)
	// λ so small the scaled instance still solves (smax=∞ → always feasible),
	// but a non-positive base deadline must error.
	if _, err := HomogeneityCheck(g, 0, []float64{2}, ContinuousOptions{}); err == nil {
		t.Fatal("accepted zero base deadline")
	}
}

func TestSolutionFromSpeedsRejectsBadSpeeds(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 10)
	m, _ := model.NewContinuous(2)
	if _, err := p.solutionFromSpeeds(m, []float64{1, 1, -1, 1}, Stats{}); err == nil {
		t.Fatal("accepted negative speed")
	}
	if _, err := p.solutionFromSpeeds(m, []float64{1}, Stats{}); err == nil {
		t.Fatal("accepted wrong speed count")
	}
}

func TestAlphaSolutionRejectsInfeasibleSpeeds(t *testing.T) {
	p, _ := NewProblem(diamondGraph(), 1) // cpw 8: speeds 1 cannot fit
	if _, err := p.alphaSolutionFromSpeeds([]float64{1, 1, 1, 1}, 3, Stats{}); err == nil {
		t.Fatal("accepted deadline-violating α speeds")
	}
	p2, _ := NewProblem(diamondGraph(), 100)
	if _, err := p2.alphaSolutionFromSpeeds([]float64{0, 1, 1, 1}, 3, Stats{}); err == nil {
		t.Fatal("accepted zero α speed")
	}
}

func TestDiscreteOptionsDefaults(t *testing.T) {
	var o DiscreteOptions
	if o.maxNodes() != 4_000_000 || o.maxFrontier() != 500_000 {
		t.Fatalf("defaults: %d, %d", o.maxNodes(), o.maxFrontier())
	}
	o = DiscreteOptions{MaxNodes: 7, MaxFrontier: 9}
	if o.maxNodes() != 7 || o.maxFrontier() != 9 {
		t.Fatalf("overrides ignored: %d, %d", o.maxNodes(), o.maxFrontier())
	}
}

func TestCheckFeasibleCycle(t *testing.T) {
	g := graph.New()
	g.AddTasks(2, 1)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	p := &Problem{G: g, Deadline: 10}
	if err := p.CheckFeasible(1); err == nil {
		t.Fatal("accepted cyclic graph")
	}
}
