package energysched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// One benchmark per table/figure of the experiment suite (see DESIGN.md §3
// and EXPERIMENTS.md). Each iteration regenerates the experiment at Quick
// scale; run cmd/experiments for the full-size report.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for _, exp := range Experiments() {
		if exp.ID != id {
			continue
		}
		cfg := ExperimentConfig{Seed: 42, Quick: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exp.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown experiment %q", id)
}

func BenchmarkTable1Fork(b *testing.B)     { benchExperiment(b, "T1") }
func BenchmarkTable2TreeSP(b *testing.B)   { benchExperiment(b, "T2") }
func BenchmarkTable3Vdd(b *testing.B)      { benchExperiment(b, "T3") }
func BenchmarkTable4Hardness(b *testing.B) { benchExperiment(b, "T4") }
func BenchmarkTable5Approx(b *testing.B)   { benchExperiment(b, "T5") }

func BenchmarkFigure1DeadlineSweep(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkFigure2ModeCount(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkFigure3DeltaSweep(b *testing.B)    { benchExperiment(b, "F3") }
func BenchmarkFigure4KSweep(b *testing.B)        { benchExperiment(b, "F4") }
func BenchmarkFigure5Scaling(b *testing.B)       { benchExperiment(b, "F5") }

// Ablation benches: the design choices DESIGN.md calls out.
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkAblationAlpha(b *testing.B)       { benchExperiment(b, "A2") }
func BenchmarkAblationMapping(b *testing.B)     { benchExperiment(b, "A3") }
func BenchmarkAblationSwitching(b *testing.B)   { benchExperiment(b, "A4") }

// --- Solver micro-benchmarks ---

// benchProblem builds a list-scheduled random-DAG instance of n tasks on p
// processors with deadline factor 2.
func benchProblem(b *testing.B, n, p int) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	g := GnpDAG(rng, n, 0.2, UniformWeights(1, 5))
	m, err := ListSchedule(g, p)
	if err != nil {
		b.Fatal(err)
	}
	eg, err := BuildExecutionGraph(g, m)
	if err != nil {
		b.Fatal(err)
	}
	dmin, err := eg.MinimalDeadline(2)
	if err != nil {
		b.Fatal(err)
	}
	prob, err := NewProblem(eg, dmin*2)
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

func BenchmarkContinuousNumeric(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prob := benchProblem(b, n, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prob.SolveContinuousNumeric(2, ContinuousOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSPAlgebra(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			g, expr := RandomSP(rng, n, UniformWeights(1, 5))
			dmin, _ := g.MinimalDeadline(2)
			prob, err := NewProblem(g, dmin*2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prob.SolveSPContinuous(expr, math.Inf(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVddLP(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prob := benchProblem(b, n, 4)
			modes, _ := NewVddHopping([]float64{0.5, 1, 1.5, 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prob.SolveVddHopping(modes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDiscreteBB(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prob := benchProblem(b, n, 3)
			m, _ := NewDiscrete([]float64{0.5, 1, 1.5, 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prob.SolveDiscreteBB(m, DiscreteOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDiscreteSPPareto(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			g, expr := RandomSP(rng, n, UniformWeights(1, 5))
			dmin, _ := g.MinimalDeadline(2)
			prob, err := NewProblem(g, dmin*1.5)
			if err != nil {
				b.Fatal(err)
			}
			m, _ := NewDiscrete([]float64{0.5, 1, 1.5, 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prob.SolveDiscreteSP(m, expr, DiscreteOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDiscreteGreedy(b *testing.B) {
	prob := benchProblem(b, 32, 4)
	m, _ := NewDiscrete([]float64{0.5, 1, 1.5, 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.SolveDiscreteGreedy(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalApprox(b *testing.B) {
	prob := benchProblem(b, 16, 4)
	m, _ := NewIncremental(0.5, 2, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.SolveIncrementalApprox(m, 8, ContinuousOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulator(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := GnpDAG(rng, 256, 0.05, UniformWeights(1, 5))
	m, err := ListSchedule(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	durations := make([]float64, g.N())
	for i := range durations {
		durations[i] = g.Weight(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, m, durations); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := GnpDAG(rng, 256, 0.05, UniformWeights(1, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ListSchedule(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}
