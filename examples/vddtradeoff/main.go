// Vddtradeoff: the design question the paper's conclusion poses. Vdd-Hopping
// smooths out discrete modes by mixing them *within* a task; the Incremental
// model instead keeps one speed per task but spaces the modes regularly with
// increment δ. This example quantifies the trade: how small must δ be before
// plain Incremental matches Vdd-Hopping on the same hardware speed range?
//
//	go run ./examples/vddtradeoff
package main

import (
	"fmt"
	"log"
	"math/rand"

	energysched "repro"
)

func main() {
	const (
		smin, smax = 0.5, 2.0
		factor     = 1.7
	)
	rng := rand.New(rand.NewSource(7))
	// A series-parallel workload so the exact Pareto DP can price the
	// Incremental optimum even with dense grids (branch-and-bound could not —
	// Theorem 4).
	g, expr := energysched.RandomSP(rng, 14, energysched.UniformWeights(1, 5))
	dmin, err := g.MinimalDeadline(smax)
	if err != nil {
		log.Fatal(err)
	}
	prob, err := energysched.NewProblem(g, factor*dmin)
	if err != nil {
		log.Fatal(err)
	}
	cont, err := prob.SolveContinuous(smax, energysched.ContinuousOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series-parallel workload, %d tasks, deadline %.3g× minimal\n", g.N(), factor)
	fmt.Printf("continuous lower bound: %.2f\n\n", cont.Energy)

	// Vdd-Hopping with the coarse factory mode set.
	coarse := []float64{0.5, 1.0, 2.0}
	vm, _ := energysched.NewVddHopping(coarse)
	vdd, err := prob.SolveVddHopping(vm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vdd-hopping on coarse modes %v: %.2f (%.2f%% above continuous)\n\n",
		coarse, vdd.Energy, 100*(vdd.Energy/cont.Energy-1))

	fmt.Println("incremental (one speed per task, grid smin + i·δ):")
	fmt.Println("    δ     modes   E(incr-opt)   vs continuous   vs vdd   bound (1+δ/smin)²")
	for _, delta := range []float64{0.75, 0.5, 0.25, 0.1, 0.05} {
		im, err := energysched.NewIncremental(smin, smax, delta)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := prob.SolveDiscreteSP(im, expr, energysched.DiscreteOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := prob.Verify(sol, 1e-6); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.2f %7d %12.2f %14.2f%% %8.2f%% %12.2f\n",
			delta, im.NumModes(), sol.Energy,
			100*(sol.Energy/cont.Energy-1),
			100*(sol.Energy/vdd.Energy-1),
			energysched.Proposition1ContinuousBound(im))
	}

	fmt.Println("\nReading: once δ reaches ≈ 0.25 (a handful of regularly spaced modes),")
	fmt.Println("plain per-task speeds already beat coarse-mode Vdd-Hopping, and shrinking")
	fmt.Println("δ further converges to the continuous bound: Proposition 1 in practice.")
}
