// Energycurve: the energy–deadline trade-off as a first-class object. For a
// stencil workload on four processors, sample the continuous-optimal energy
// across deadline factors, print the marginal price of a second, and verify
// the paper's structural identity E(λD) = E(D)/λ² (homogeneity) in the
// region where smax does not bind.
//
//	go run ./examples/energycurve
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	energysched "repro"
)

func main() {
	const smax = 2.0
	app := energysched.Stencil(6, 6, 2)
	mapping, err := energysched.ListSchedule(app, 4)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := energysched.BuildExecutionGraph(app, mapping)
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := exec.ComputeMetrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stencil 6×6 on 4 processors: %d tasks, depth %d, avg parallelism %.2f\n\n",
		metrics.Tasks, metrics.Depth, metrics.AvgParallelism)

	factors := []float64{1.1, 1.25, 1.5, 2, 2.5, 3, 4, 5}
	curve, err := energysched.EnergyDeadlineCurve(exec, smax, factors, energysched.ContinuousOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("deadline factor β    E*(βDmin)    E·D² (homogeneity invariant)    curve")
	maxE := curve[0].Energy
	for _, pt := range curve {
		bar := int(pt.Energy / maxE * 50)
		fmt.Printf("%15.2f %12.2f %18.1f    %s\n",
			pt.Factor, pt.Energy, pt.Energy*pt.Deadline*pt.Deadline,
			strings.Repeat("█", bar))
	}

	// E·D² settles to a constant once smax stops binding — that constant is
	// the cube of the execution graph's "equivalent weight".
	last := curve[len(curve)-1]
	fmt.Printf("\nasymptotic E·D² = %.1f → equivalent weight ≈ %.3f\n",
		last.Energy*last.Deadline*last.Deadline,
		math.Cbrt(last.Energy*last.Deadline*last.Deadline))

	// The marginal price of one more second at a moderate deadline.
	dmin, _ := exec.MinimalDeadline(smax)
	D := dmin * 2
	rate, err := energysched.MarginalEnergyRate(exec, smax, D, D*0.01, energysched.ContinuousOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at D = 2·Dmin = %.2f: one extra time unit saves %.3f joules (dE/dD = %.3f)\n",
		D, -rate, rate)
}
