// Pipeline: the paper's "legacy application" motivation. A four-stage
// streaming pipeline is already mapped stage-per-processor (the natural
// legacy layout); the throughput contract gives a deadline. We sweep the
// deadline slack and report how much of the no-DVFS energy each model
// reclaims — the headline use case for MinEnergy(G, D).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	energysched "repro"
)

func main() {
	// Four stages with uneven costs (decode, transform, encode, write) over
	// eight stream items; stages are stateful, so item k of a stage follows
	// item k-1 of the same stage — exactly graph.Pipeline's dependence shape.
	stages := []float64{2, 6, 4, 1}
	const items = 8
	app := energysched.Pipeline(len(stages), items, stages)

	// Legacy mapping: one stage per processor, items in order.
	mapping := &energysched.Mapping{Order: make([][]int, len(stages))}
	for k := 0; k < items; k++ {
		for s := range stages {
			mapping.Order[s] = append(mapping.Order[s], k*len(stages)+s)
		}
	}
	exec, err := energysched.BuildExecutionGraph(app, mapping)
	if err != nil {
		log.Fatal(err)
	}

	const smax = 2.0
	modes := []float64{0.5, 1.0, 1.5, 2.0}
	dmin, err := exec.MinimalDeadline(smax)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d stages × %d items = %d tasks; fastest finish %.3g\n\n",
		len(stages), items, app.N(), dmin)
	fmt.Println("slack β   E(no-DVFS)   continuous   vdd-hopping   discrete-greedy   reclaimed")

	cm, _ := energysched.NewContinuous(smax)
	vm, _ := energysched.NewVddHopping(modes)
	dm, _ := energysched.NewDiscrete(modes)

	for _, beta := range []float64{1.1, 1.3, 1.6, 2.0, 3.0, 4.0} {
		prob, err := energysched.NewProblem(exec, beta*dmin)
		if err != nil {
			log.Fatal(err)
		}
		allmax, err := prob.SolveAllMax(cm)
		if err != nil {
			log.Fatal(err)
		}
		cont, err := prob.SolveContinuous(smax, energysched.ContinuousOptions{})
		if err != nil {
			log.Fatal(err)
		}
		vdd, err := prob.SolveVddHopping(vm)
		if err != nil {
			log.Fatal(err)
		}
		greedy, err := prob.SolveDiscreteGreedy(dm)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range []*energysched.Solution{allmax, cont, vdd, greedy} {
			if err := prob.Verify(s, 1e-6); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%6.1f %12.1f %12.1f %13.1f %17.1f %10.1f%%\n",
			beta, allmax.Energy, cont.Energy, vdd.Energy, greedy.Energy,
			100*(1-vdd.Energy/allmax.Energy))
	}

	fmt.Println("\nReading: once the contract allows β ≈ 2, speed scaling reclaims")
	fmt.Println("roughly three quarters of the energy a deadline-oblivious run wastes,")
	fmt.Println("and the Vdd-Hopping schedule tracks the continuous lower bound closely.")
}
