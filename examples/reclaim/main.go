// Example reclaim: an online reclaiming session re-optimizing a schedule
// as it executes. A layered DAG is solved under the Continuous model, then
// a jittered execution (half the tasks finish up to 35% early) streams
// completion events through a reclaim session: each deviation re-solves
// only the dirtied residual components, warm-started from the previous
// solution, and the freed slack turns into energy savings.
package main

import (
	"fmt"
	"log"
	"math/rand"

	energysched "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := energysched.Layered(rng, 5, 4, 0.35, energysched.UniformWeights(1, 4))

	m, err := energysched.NewContinuous(2)
	if err != nil {
		log.Fatal(err)
	}
	dmin, err := g.MinimalDeadline(2)
	if err != nil {
		log.Fatal(err)
	}
	prob, err := energysched.NewProblem(g, dmin*1.8)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := energysched.Explain(prob, m, energysched.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := pl.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned: %d tasks, deadline %.3g, energy %.6g\n", g.N(), prob.Deadline, sol.Energy)

	sess, err := energysched.NewReclaimSession(prob, m, sol, energysched.ReclaimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Half the tasks complete early (up to 35%); the replay is closed
	// loop: re-sped tasks execute at their re-planned speeds.
	jit := energysched.Jitter{Seed: 7, Rate: 0.5, Early: 0.35}
	factors, err := jit.Factors(g.N())
	if err != nil {
		log.Fatal(err)
	}
	results, err := sess.Replay(factors)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		if res.Clean {
			continue
		}
		fmt.Printf("  task %2d finished %+5.1f%% → re-solved %d component(s), %d reused; residual energy %.6g\n",
			res.Task, 100*(res.ActualDuration/res.PlannedDuration-1), res.Resolved, res.Reused, res.ResidualEnergy)
	}

	st := sess.Stats()
	incurred, _ := sess.Energy()
	final, err := sess.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed energy %.6g (planned %.6g); %d events, %d replans, %d components re-solved / %d replayed\n",
		incurred, sol.Energy, st.Events, st.Replans, st.ComponentsResolved, st.ComponentsReused)
	fmt.Printf("deadline %.4g, actual makespan %.4g\n", prob.Deadline, final.Makespan)
}
