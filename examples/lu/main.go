// LU: energy reclaiming on a dense-factorization DAG. The elimination DAG
// narrows as it proceeds — late steps have far less parallelism than early
// ones — so a fixed mapping leaves lots of slack on the tail tasks. Per-task
// speed scaling turns that slack into energy savings without touching the
// mapping or the deadline.
//
//	go run ./examples/lu
package main

import (
	"fmt"
	"log"
	"math"

	energysched "repro"
)

func main() {
	const (
		blocks = 6
		procs  = 4
		smax   = 2.0
	)
	app := energysched.LUElimination(blocks, 1)
	mapping, err := energysched.ListSchedule(app, procs)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := energysched.BuildExecutionGraph(app, mapping)
	if err != nil {
		log.Fatal(err)
	}
	dmin, err := exec.MinimalDeadline(smax)
	if err != nil {
		log.Fatal(err)
	}
	D := 1.5 * dmin
	prob, err := energysched.NewProblem(exec, D)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU elimination: %d×%d blocks → %d tasks on %d processors\n", blocks, blocks, app.N(), procs)
	fmt.Printf("deadline %.4g (fastest possible %.4g)\n\n", D, dmin)

	cont, err := prob.SolveContinuous(smax, energysched.ContinuousOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := prob.Verify(cont, 1e-6); err != nil {
		log.Fatal(err)
	}
	cm, _ := energysched.NewContinuous(smax)
	allmax, err := prob.SolveAllMax(cm)
	if err != nil {
		log.Fatal(err)
	}
	modes := []float64{0.5, 1.0, 1.5, 2.0}
	vm, _ := energysched.NewVddHopping(modes)
	vdd, err := prob.SolveVddHopping(vm)
	if err != nil {
		log.Fatal(err)
	}
	dm, _ := energysched.NewDiscrete(modes)
	greedy, err := prob.SolveDiscreteGreedy(dm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("no-DVFS energy:       %8.1f\n", allmax.Energy)
	fmt.Printf("continuous optimum:   %8.1f  (-%.0f%%)\n", cont.Energy, 100*(1-cont.Energy/allmax.Energy))
	fmt.Printf("vdd-hopping optimum:  %8.1f  (-%.0f%%)\n", vdd.Energy, 100*(1-vdd.Energy/allmax.Energy))
	fmt.Printf("discrete greedy:      %8.1f  (-%.0f%%)\n\n", greedy.Energy, 100*(1-greedy.Energy/allmax.Energy))

	// Average optimal speed per elimination step k: the DAG narrows, so the
	// optimizer slows the wide early steps (they own the parallel slack) and
	// speeds up the narrow critical tail.
	speeds, err := cont.Speeds()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mean continuous-optimal speed per elimination step:")
	for k := 0; k < blocks; k++ {
		sum, count := 0.0, 0
		prefix := fmt.Sprintf("(%d", k)
		for i := 0; i < app.N(); i++ {
			name := app.Name(i)
			if idx := indexOf(name, prefix); idx >= 0 {
				sum += speeds[i]
				count++
			}
		}
		if count == 0 {
			continue
		}
		mean := sum / float64(count)
		bar := int(math.Round(mean * 20))
		fmt.Printf("  step %d (%2d tasks): %.3f %s\n", k, count, mean, repeat('#', bar))
	}

	fmt.Println("\nschedule at the continuous optimum:")
	fmt.Print(cont.Schedule.Gantt(mapping, 70))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
