// Quickstart: build a small task graph, map it onto two processors, and
// solve MinEnergy(G, D) under all four energy models of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	energysched "repro"
)

func main() {
	// A six-task application: prepare, two parallel pipelines, merge.
	g := energysched.NewGraph()
	prep := g.AddTask("prep", 4)
	fa := g.AddTask("filterA", 6)
	fb := g.AddTask("filterB", 3)
	ra := g.AddTask("reduceA", 2)
	rb := g.AddTask("reduceB", 5)
	merge := g.AddTask("merge", 4)
	g.MustAddEdge(prep, fa)
	g.MustAddEdge(prep, fb)
	g.MustAddEdge(fa, ra)
	g.MustAddEdge(fb, rb)
	g.MustAddEdge(ra, merge)
	g.MustAddEdge(rb, merge)

	// The mapping is *given* (the paper's core assumption): say a legacy
	// runtime put the A-pipeline on P0 and the B-pipeline on P1.
	mapping := &energysched.Mapping{Order: [][]int{
		{prep, fa, ra, merge},
		{fb, rb},
	}}
	exec, err := energysched.BuildExecutionGraph(g, mapping)
	if err != nil {
		log.Fatal(err)
	}

	// Deadline: 1.6× the fastest possible finish at smax = 2.
	const smax = 2.0
	dmin, err := exec.MinimalDeadline(smax)
	if err != nil {
		log.Fatal(err)
	}
	D := 1.6 * dmin
	prob, err := energysched.NewProblem(exec, D)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("six tasks on two processors, deadline %.3g (fastest possible %.3g)\n\n", D, dmin)

	modes := []float64{0.5, 1.0, 1.5, 2.0}

	// Continuous (Theorems 1–2 / geometric program).
	cont, err := prob.SolveContinuous(smax, energysched.ContinuousOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Vdd-Hopping (Theorem 3, exact LP).
	vm, _ := energysched.NewVddHopping(modes)
	vdd, err := prob.SolveVddHopping(vm)
	if err != nil {
		log.Fatal(err)
	}
	// Discrete (Theorem 4, exact branch-and-bound — n is small).
	dm, _ := energysched.NewDiscrete(modes)
	disc, err := prob.SolveDiscreteBB(dm, energysched.DiscreteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Incremental (Theorem 5 approximation).
	im, _ := energysched.NewIncremental(0.5, smax, 0.25)
	incr, err := prob.SolveIncrementalApprox(im, 8, energysched.ContinuousOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Baseline: what the same mapping costs with no speed scaling.
	cm, _ := energysched.NewContinuous(smax)
	allmax, err := prob.SolveAllMax(cm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("model          energy   vs continuous   vs no-DVFS")
	for _, row := range []struct {
		name string
		sol  *energysched.Solution
	}{
		{"continuous", cont},
		{"vdd-hopping", vdd},
		{"discrete", disc},
		{"incremental", incr},
		{"all-at-smax", allmax},
	} {
		if err := prob.Verify(row.sol, 1e-6); err != nil {
			log.Fatalf("%s failed verification: %v", row.name, err)
		}
		fmt.Printf("%-12s %8.3f %10.3f× %12.1f%%\n",
			row.name, row.sol.Energy, row.sol.Energy/cont.Energy,
			100*(1-row.sol.Energy/allmax.Energy))
	}

	fmt.Println("\ncontinuous-optimal schedule:")
	fmt.Print(cont.Schedule.Gantt(mapping, 60))
}
